"""Command-line interface: ``repro-planarity``.

Subcommands:

* ``test``        -- run the Theorem 1 planarity tester on a generated graph
* ``partition``   -- run the Theorem 3/4 partition and report its quality
* ``spanner``     -- build the Corollary 17 spanner and measure it
* ``applications``-- run the Corollary 16 cycle-freeness/bipartiteness testers
* ``lower-bound`` -- sample the Theorem 2 hard instance and certify it
* ``families``    -- list available graph families
* ``sweep``       -- expand an n x epsilon x seed grid into jobs and run
  them on the :mod:`repro.runtime` orchestrator (serial, process-pool,
  async worker, or remote socket backend, with a sharded on-disk
  result store)
* ``serve``       -- run the persistent sweep service: many clients
  submit sweeps concurrently, one shared worker fleet executes them
  (round-robin fairness, admission control, straggler re-dispatch)
* ``submit``      -- send one sweep to a running ``serve`` endpoint
  (``--connect``) or run it through the same :class:`Client` facade
  locally (``--backend``); records are identical either way
* ``worker``      -- join a ``sweep --backend remote`` server or a
  ``serve`` fleet over TCP (``--reconnect`` survives restarts)
* ``cache``       -- inspect (``stats``) or garbage-collect (``gc``)
  a sharded result store
* ``trace``       -- inspect a telemetry trace directory written by
  ``sweep --trace DIR``: ``view`` (span tree), ``top`` (slowest span
  groups), ``export --chrome`` (Chrome ``trace_event`` JSON)

The ``sweep`` subcommand takes comma-separated axis lists and executes
their cartesian product; repeated invocations with ``--cache-dir`` are
served from the sharded on-disk store instead of re-running the
simulator.  ``--shard i/k`` runs one deterministic slice of the grid
(point every slice at the same ``--cache-dir``, possibly from different
machines; ``--balance cost`` splits by measured job cost instead of
key-hash counts) and ``--resume`` finishes whatever keys the store is
still missing.  ``--backend remote --listen host:port`` serves the
grid to ``repro-planarity worker --connect host:port`` processes; a
worker killed mid-run has its job requeued.
``--kind simulate`` sweeps raw CONGEST protocols (``--programs``) on
the simulator, and ``--profile faithful|fast`` selects the simulator's
instrumentation profile (exported as ``REPRO_SIM_PROFILE`` so
process-pool workers follow along).

Examples::

    repro-planarity test --family delaunay --n 1000 --epsilon 0.1
    repro-planarity test --far planted-k5 --n 500 --epsilon 0.1
    repro-planarity spanner --family grid --n 900 --epsilon 0.2
    repro-planarity sweep --kind test --families grid,delaunay \\
        --ns 128,256,512 --epsilons 0.5,0.1 --seeds 0,1 \\
        --backend process --cache-dir /tmp/repro-cache
    repro-planarity sweep --kind simulate --programs bfs,storm \\
        --families delaunay --ns 256 --profile fast
    repro-planarity sweep --backend remote --listen 127.0.0.1:7341 \\
        --cache-dir /tmp/repro-cache   # then, on each worker host:
    repro-planarity worker --connect 127.0.0.1:7341
    repro-planarity serve --listen 127.0.0.1:7077 \\
        --cache-dir /tmp/repro-cache   # persistent fleet; then:
    repro-planarity worker --connect 127.0.0.1:7077 --reconnect
    repro-planarity submit --connect 127.0.0.1:7077 --kind test \\
        --families grid --ns 128,256 --epsilons 0.5,0.1
    repro-planarity cache gc --cache-dir /tmp/repro-cache \\
        --ttl 604800 --max-bytes 500000000
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .analysis.tables import Table
from .applications.spanner import build_spanner, measure_stretch
from .congest.instrumentation import PROFILE_ENV_VAR, PROFILES
from .graphs.far_from_planar import FAR_FAMILIES, make_far
from .graphs.generators import PLANAR_FAMILIES, make_planar
from .graphs.lower_bound import lower_bound_instance
from .partition.stage1 import ENGINES, partition_stage1
from .partition.weighted_selection import partition_randomized
from .runtime import (
    Client,
    ResultCache,
    RunConfig,
    ShardedStore,
    SweepSpec,
    make_backend,
    run_sweep,
)
from .runtime.remote import parse_endpoint
from .testers.applications import test_bipartiteness, test_cycle_freeness
from .testers.planarity import PlanarityTestConfig, test_planarity

SWEEP_KINDS = {
    "test": "test_planarity",
    "partition": "partition_stage1",
    "partition-randomized": "partition_randomized",
    "spanner": "spanner",
    "cycle-freeness": "cycle_freeness",
    "bipartiteness": "bipartiteness",
    "simulate": "simulate_program",
}


def _build_graph(args):
    if getattr(args, "far", None):
        graph, farness = make_far(args.far, args.n, seed=args.seed)
        return graph, f"far:{args.far} (certified farness >= {farness:.3f})"
    graph = make_planar(args.family, args.n, seed=args.seed)
    return graph, f"planar:{args.family}"


def _cmd_test(args) -> int:
    graph, label = _build_graph(args)
    config = PlanarityTestConfig(
        epsilon=args.epsilon,
        collect_exact_violations=args.analyze,
        engine=args.engine,
    )
    result = test_planarity(graph, seed=args.seed, config=config)
    table = Table(
        f"Planarity test on {label}",
        [
            "n", "m", "epsilon", "verdict", "stage", "rounds",
            "stage1", "stage2", "parts",
        ],
    )
    table.add_row(
        graph.number_of_nodes(),
        graph.number_of_edges(),
        args.epsilon,
        "accept" if result.accepted else "REJECT",
        result.rejected_stage or "-",
        result.rounds,
        result.stage1_rounds,
        result.stage2_rounds,
        result.stage1.partition.size,
    )
    table.print()
    if args.analyze and result.total_violating_exact is not None:
        print(f"exact violating edges across parts: {result.total_violating_exact}")
    return 0 if result.accepted else 1


def _cmd_partition(args) -> int:
    graph, label = _build_graph(args)
    if args.method == "deterministic":
        result = partition_stage1(
            graph,
            epsilon=args.epsilon,
            target_cut=args.epsilon * graph.number_of_nodes(),
            engine=args.engine,
        )
    else:
        result = partition_randomized(
            graph,
            epsilon=args.epsilon,
            delta=args.delta,
            seed=args.seed,
            engine=args.engine,
        )
    table = Table(
        f"{args.method} partition of {label}",
        ["n", "m", "parts", "cut", "target", "max height", "phases", "rounds"],
    )
    table.add_row(
        graph.number_of_nodes(),
        graph.number_of_edges(),
        result.partition.size,
        result.partition.cut_size(),
        result.target_cut,
        result.partition.max_height(),
        len(result.phases),
        result.rounds,
    )
    table.print()
    return 0 if result.success else 1


def _cmd_spanner(args) -> int:
    graph, label = _build_graph(args)
    result = build_spanner(
        graph, epsilon=args.epsilon, method=args.method, seed=args.seed
    )
    stretch = measure_stretch(graph, result.spanner, sample_nodes=8, seed=args.seed)
    n = graph.number_of_nodes()
    table = Table(
        f"Corollary 17 spanner on {label}",
        [
            "n", "m", "spanner edges", "size/n", "measured stretch",
            "guaranteed", "rounds",
        ],
    )
    table.add_row(
        n,
        graph.number_of_edges(),
        result.size,
        result.size / n,
        stretch,
        result.guaranteed_stretch,
        result.rounds,
    )
    table.print()
    return 0


def _cmd_applications(args) -> int:
    graph, label = _build_graph(args)
    cycle = test_cycle_freeness(graph, epsilon=args.epsilon, seed=args.seed)
    bipartite = test_bipartiteness(graph, epsilon=args.epsilon, seed=args.seed)
    table = Table(
        f"Corollary 16 testers on {label}",
        ["property", "verdict", "rejecting parts", "rounds"],
    )
    table.add_row(
        "cycle-freeness",
        "accept" if cycle.accepted else "REJECT",
        len(cycle.rejecting_parts),
        cycle.rounds,
    )
    table.add_row(
        "bipartiteness",
        "accept" if bipartite.accepted else "REJECT",
        len(bipartite.rejecting_parts),
        bipartite.rounds,
    )
    table.print()
    return 0


def _cmd_lower_bound(args) -> int:
    instance = lower_bound_instance(args.n, seed=args.seed)
    table = Table(
        "Theorem 2 lower-bound instance",
        ["n", "m", "girth", "target girth", "removed", "farness lb", "blind radius"],
    )
    graph = instance.graph
    table.add_row(
        graph.number_of_nodes(),
        graph.number_of_edges(),
        instance.girth,
        instance.target_girth,
        instance.removed_edges,
        instance.farness_lower_bound,
        instance.indistinguishability_radius,
    )
    table.print()
    print(
        "Any one-sided tester running fewer rounds than the blind radius "
        "must accept this epsilon-far graph (every local view is a tree)."
    )
    return 0


def _parse_axis(raw: str, convert):
    """Parse a comma-separated CLI axis into a list of *convert* values."""
    values = [convert(tok.strip()) for tok in raw.split(",") if tok.strip()]
    if not values:
        raise SystemExit(f"empty axis list: {raw!r}")
    return values


def _parse_shard(raw: Optional[str]):
    """Parse ``--shard i/k`` into ``(index, count)`` or ``None``."""
    if raw is None:
        return None
    try:
        index_text, count_text = raw.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"--shard expects i/k (e.g. 0/2), got {raw!r}")
    if count <= 0 or not 0 <= index < count:
        raise SystemExit(f"--shard index out of range: {raw!r}")
    return index, count


def _parse_batch(raw: str):
    """Parse ``--batch``: a positive int, or ``auto`` (cost-aware sizing)."""
    if raw.strip().lower() == "auto":
        return "auto"
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(f"--batch expects an integer or 'auto', got {raw!r}")


def _sweep_spec_from_args(args) -> SweepSpec:
    """Expand the grid axes shared by ``sweep`` and ``submit``."""
    kind = SWEEP_KINDS[args.kind]
    if kind == "simulate_program":
        # Simulator sweeps iterate over protocols, not epsilons.
        params = {"program": _parse_axis(args.programs, str)}
    else:
        params = {"epsilon": _parse_axis(args.epsilons, float)}
    if args.deltas:
        params["delta"] = _parse_axis(args.deltas, float)
    if args.methods:
        params["method"] = _parse_axis(args.methods, str)
    if args.profile:
        # The env knob reaches every CongestNetwork.run in this process
        # *and* in process-pool workers (they inherit the environment).
        os.environ[PROFILE_ENV_VAR] = args.profile
    if kind == "simulate_program":
        # Simulator jobs carry the *effective* profile (flag, else env,
        # else default) in their config so fast/faithful results occupy
        # distinct cache entries even when selected via REPRO_SIM_PROFILE.
        params["profile"] = [
            args.profile or os.environ.get(PROFILE_ENV_VAR) or "faithful"
        ]
    fars = _parse_axis(args.far_families, str) if args.far_families else ()
    return SweepSpec.make(
        kind,
        families=_parse_axis(args.families, str),
        fars=fars,
        ns=_parse_axis(args.ns, int),
        seeds=_parse_axis(args.seeds, int),
        **params,
    )


def _run_config_from_args(args) -> RunConfig:
    """Batch/engine knobs as a :class:`RunConfig` (CLI flag beats env).

    ``run_sweep`` / ``iter_jobs`` export the explicitly-set knobs for
    the run's duration, which is how ``--engine`` reaches partition
    calls in process-pool workers too.
    """
    return RunConfig(
        sim_batch=args.batch,
        sim_batch_waste=args.batch_waste,
        partition_engine=args.engine,
    )


def _cmd_sweep(args) -> int:
    if args.trace:
        # Enable tracing for this process and everything it spawns
        # (pool forks, async worker env, remote welcome frames).
        from .telemetry import configure

        configure(trace_dir=args.trace)
    progress = None
    if args.progress:
        from .telemetry.dashboard import SweepProgress

        progress = SweepProgress()
    sweep = _sweep_spec_from_args(args)
    if args.backend == "process":
        backend = make_backend("process", max_workers=args.workers)
    elif args.backend == "async":
        # Workers consult the shared sharded store directly, so
        # concurrent orchestrators exchange results mid-flight.
        backend = make_backend(
            "async", max_workers=args.workers, store_dir=args.cache_dir
        )
    elif args.backend == "remote":
        if not args.listen:
            raise SystemExit("--backend remote needs --listen HOST:PORT")
        try:
            host, port = parse_endpoint(args.listen)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        backend = make_backend(
            "remote", host=host, port=port, store_dir=args.cache_dir
        )
        backend.bind()
        print(
            f"remote backend listening on {backend.host}:"
            f"{backend.bound_port} (join with: repro-planarity worker "
            f"--connect {backend.host}:{backend.bound_port})"
        )
    else:
        backend = make_backend(args.backend)
    cache = ResultCache(disk_dir=args.cache_dir)
    shard = _parse_shard(args.shard)
    if args.resume and cache.store_backend is None:
        raise SystemExit("--resume needs --cache-dir (the store to resume from)")
    if args.balance == "cost" and cache.store_backend is None:
        raise SystemExit(
            "--balance cost needs --cache-dir (the store holding the "
            "measured cost table)"
        )
    result = run_sweep(
        sweep, backend=backend, cache=cache, shard=shard, resume=args.resume,
        balance=args.balance, progress=progress,
        config=_run_config_from_args(args),
    )
    shard_label = f" [shard {shard[0]}/{shard[1]}]" if shard else ""
    table = result.to_table(
        f"sweep: {args.kind} over {len(result.records)} jobs{shard_label}",
        columns=None,
    )
    table.print()
    summary = result.summary()
    print(
        f"jobs={summary['jobs']} executed={summary['executed']} "
        f"backend={summary['backend']}"
    )
    # Cache accounting from the cache instance itself: includes disk
    # hits/evictions the per-batch snapshot cannot see.
    print(f"cache: {cache.stats.summary_line()}")
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(table.to_markdown() + "\n")
        print(f"markdown table written to {args.markdown}")
    if args.trace:
        print(
            f"trace written to {args.trace} (inspect with: "
            f"repro-planarity trace view {args.trace})"
        )
    return 0


def _cmd_trace(args) -> int:
    import json

    from .telemetry import chrome_trace, read_events, render_tree, top_spans

    events = read_events(args.trace_dir)
    if not events:
        print(f"no trace events under {args.trace_dir}", file=sys.stderr)
        return 1
    if args.trace_command == "view":
        for line in render_tree(events, max_lines=args.max_lines):
            print(line)
        return 0
    if args.trace_command == "top":
        rows = top_spans(events, name=args.name)
        table = Table(
            f"top spans in {args.trace_dir} ({len(events)} events)",
            ["span", "kind", "count", "total s", "mean s", "max s"],
        )
        for row in rows[: args.limit]:
            table.add_row(
                row["name"],
                row["kind"],
                row["count"],
                f"{row['total_s']:.4f}",
                f"{row['mean_s']:.4f}",
                f"{row['max_s']:.4f}",
            )
        table.print()
        return 0
    # export
    payload = chrome_trace(events) if args.chrome else events
    with open(args.out, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    label = "Chrome trace_event" if args.chrome else "merged event list"
    print(f"wrote {label} ({len(events)} events) to {args.out}")
    return 0


def _cmd_families(_args) -> int:
    print("planar families: ", ", ".join(sorted(PLANAR_FAMILIES)))
    print("far families:    ", ", ".join(sorted(FAR_FAMILIES)))
    return 0


def _cmd_worker(args) -> int:
    from .runtime.worker import serve_remote

    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return serve_remote(
        host, port, store_dir=args.store, retry_seconds=args.retry_seconds,
        reconnect=args.reconnect,
    )


def _cmd_serve(args) -> int:
    import signal

    from .runtime.scheduler import SpeculationPolicy
    from .runtime.service import SweepService

    try:
        host, port = parse_endpoint(args.listen)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    service = SweepService(
        host=host,
        port=port,
        store_dir=args.cache_dir,
        heartbeat=args.heartbeat,
        max_clients=args.max_clients,
        max_pending=args.max_pending,
        speculation=SpeculationPolicy() if args.speculate else None,
    )
    service.bind()
    print(
        f"service listening on {service.endpoint}\n"
        f"  workers: repro-planarity worker --connect {service.endpoint} "
        f"--reconnect\n"
        f"  clients: repro-planarity submit --connect {service.endpoint} ...",
        flush=True,
    )
    # Graceful shutdown on SIGTERM (supervisors, CI) as well as ^C.
    # SIGINT needs re-arming too: a shell that launched us in the
    # background may have left it SIG_IGN, in which case Python never
    # installs its KeyboardInterrupt handler.
    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _interrupt)
    signal.signal(signal.SIGINT, _interrupt)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.stop()
    return 0


def _cmd_submit(args) -> int:
    sweep = _sweep_spec_from_args(args)
    client = Client(
        endpoint=args.connect,
        backend=args.backend,
        cache_dir=args.cache_dir,
        config=_run_config_from_args(args),
        name=args.name,
    )

    def on_progress(frame) -> None:
        print(
            f"progress: {frame.get('done')}/{frame.get('total')} "
            f"(queued {frame.get('queued')}, inflight {frame.get('inflight')}, "
            f"workers {frame.get('workers')})",
            file=sys.stderr,
        )

    records = list(
        client.submit(sweep, on_progress=on_progress if args.progress else None)
    )
    # Sorted columns so the rendering is deterministic whatever order
    # record fields arrived in -- the CI smoke byte-compares the
    # markdown of a serial leg against concurrent service legs.
    columns = sorted({key for record in records for key in record})
    table = Table(f"submit: {args.kind} over {len(records)} jobs", columns)
    for record in records:
        table.add_row(*(record.get(col, "-") for col in columns))
    table.print()
    target = (
        f"service {args.connect}" if args.connect else f"backend {args.backend}"
    )
    print(f"jobs={len(records)} target={target}")
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(table.to_markdown() + "\n")
        print(f"markdown table written to {args.markdown}")
    return 0


def _format_bytes(count) -> str:
    if count is None:
        return "-"
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(count)} B"


def _cmd_cache(args) -> int:
    store = ShardedStore(
        args.cache_dir, record_format=getattr(args, "format", None)
    )
    if args.cache_command == "dump":
        count = 0
        for key, stamp, record in sorted(store.dump()):
            if args.json:
                print(json.dumps(
                    {"key": key, "stamp": stamp, "record": record},
                    sort_keys=True,
                ))
            else:
                print(f"{key}  @{stamp}  {json.dumps(record, sort_keys=True)}")
            count += 1
        if not args.json:
            print(f"({count} live entries)", file=sys.stderr)
        return 0
    if args.cache_command == "migrate":
        report = store.migrate()
        print(
            f"migrate: {report.entries} entries "
            f"(+{report.meta_entries} meta) now {report.format}; "
            f"{_format_bytes(report.bytes_before)} -> "
            f"{_format_bytes(report.bytes_after)} on disk"
        )
        return 0
    if args.cache_command == "stats":
        usage = store.usage()
        table = Table(
            f"store {usage['root']}",
            ["format", "shards", "entries", "live", "on disk",
             "reclaimable", "index", "meta"],
        )
        table.add_row(
            usage["format"],
            usage["shards"],
            usage["entries"],
            _format_bytes(usage["live_bytes"]),
            _format_bytes(usage["file_bytes"]),
            _format_bytes(usage["reclaimable_bytes"]),
            _format_bytes(usage["index_bytes"]),
            usage["meta_entries"],
        )
        table.print()
        if usage["oldest_t"] is not None:
            import time as _time

            now = _time.time()
            print(
                f"entry age: newest {now - usage['newest_t']:.0f}s, "
                f"oldest {now - usage['oldest_t']:.0f}s"
            )
        return 0
    # gc
    if args.ttl is None and args.max_bytes is None and not args.compact:
        raise SystemExit(
            "cache gc needs --ttl and/or --max-bytes (or --compact for a "
            "newest-wins rewrite only)"
        )
    report = store.gc(ttl=args.ttl, max_bytes=args.max_bytes,
                      grace=args.grace)
    print(
        f"gc: removed {report.entries_removed} entries "
        f"({report.expired_entries} expired, {report.evicted_entries} over "
        f"byte budget), reclaimed {_format_bytes(report.bytes_reclaimed)}; "
        f"kept {report.entries_kept} entries "
        f"({_format_bytes(report.bytes_kept)})"
    )
    return 0


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        default="delaunay",
        choices=sorted(PLANAR_FAMILIES),
        help="planar family to generate",
    )
    parser.add_argument(
        "--far",
        default=None,
        choices=sorted(FAR_FAMILIES),
        help="generate a certified far-from-planar family instead",
    )
    parser.add_argument("--n", type=int, default=500, help="number of nodes")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--epsilon", type=float, default=0.1, help="distance parameter"
    )


def _add_sweep_axis_arguments(parser: argparse.ArgumentParser) -> None:
    """Grid axes + run knobs shared by ``sweep`` and ``submit``."""
    parser.add_argument(
        "--kind",
        default="test",
        choices=sorted(SWEEP_KINDS),
        help="workload to sweep",
    )
    parser.add_argument(
        "--families",
        default="delaunay",
        help="comma-separated planar families",
    )
    parser.add_argument(
        "--far-families",
        default=None,
        help="comma-separated far families (overrides --families)",
    )
    parser.add_argument("--ns", default="256,512", help="comma-separated sizes")
    parser.add_argument(
        "--epsilons", default="0.5,0.1", help="comma-separated epsilons"
    )
    parser.add_argument("--seeds", default="0", help="comma-separated seeds")
    parser.add_argument(
        "--deltas", default=None, help="comma-separated deltas (randomized kinds)"
    )
    parser.add_argument(
        "--methods", default=None, help="comma-separated methods (spanner/apps)"
    )
    parser.add_argument(
        "--programs",
        default="bfs",
        help="comma-separated simulator programs (simulate kind): "
        "bfs,cv,flood,forest,storm",
    )
    parser.add_argument(
        "--profile",
        default=None,
        choices=sorted(PROFILES),
        help="simulator instrumentation profile (sets REPRO_SIM_PROFILE "
        "for this run, including process-pool workers)",
    )
    parser.add_argument(
        "--engine",
        default=None,
        choices=ENGINES,
        help="partition engine for partition/test kinds (sets "
        "REPRO_PARTITION_ENGINE for this run, including workers)",
    )
    parser.add_argument(
        "--batch",
        type=_parse_batch,
        default=None,
        metavar="B",
        help="coalesce up to B same-cell simulator trials into one "
        "graph-batched tensor-plane job (simulate kind with --profile "
        "fast; records are identical to unbatched runs; 'auto' sizes "
        "batches from the cost table's measured per-trial wall-times; "
        "default REPRO_SIM_BATCH or 1)",
    )
    parser.add_argument(
        "--batch-waste",
        type=float,
        default=None,
        metavar="W",
        help="padding-waste bound for ragged batch jobs: never pad a "
        "batch's smallest trial by more than a factor of W in edge "
        "slots (>= 1; default REPRO_SIM_BATCH_WASTE or 4.0)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-planarity",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_test = sub.add_parser("test", help="run the Theorem 1 planarity tester")
    _add_graph_arguments(p_test)
    p_test.add_argument(
        "--analyze", action="store_true", help="collect exact violating counts"
    )
    p_test.add_argument(
        "--engine",
        default=None,
        choices=ENGINES,
        help="partition engine (auto = CSR-native dense when supported)",
    )
    p_test.set_defaults(func=_cmd_test)

    p_part = sub.add_parser("partition", help="run the Theorem 3/4 partition")
    _add_graph_arguments(p_part)
    p_part.add_argument(
        "--method",
        default="deterministic",
        choices=("deterministic", "randomized"),
    )
    p_part.add_argument("--delta", type=float, default=0.1)
    p_part.add_argument(
        "--engine",
        default=None,
        choices=ENGINES,
        help="partition engine (auto = CSR-native dense when supported)",
    )
    p_part.set_defaults(func=_cmd_partition)

    p_span = sub.add_parser("spanner", help="build the Corollary 17 spanner")
    _add_graph_arguments(p_span)
    p_span.add_argument(
        "--method",
        default="deterministic",
        choices=("deterministic", "randomized"),
    )
    p_span.set_defaults(func=_cmd_spanner)

    p_app = sub.add_parser(
        "applications", help="run the Corollary 16 property testers"
    )
    _add_graph_arguments(p_app)
    p_app.set_defaults(func=_cmd_applications)

    p_lb = sub.add_parser(
        "lower-bound", help="sample the Theorem 2 hard instance"
    )
    p_lb.add_argument("--n", type=int, default=2000)
    p_lb.add_argument("--seed", type=int, default=0)
    p_lb.set_defaults(func=_cmd_lower_bound)

    p_fam = sub.add_parser("families", help="list graph families")
    p_fam.set_defaults(func=_cmd_families)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a parameter-grid sweep on the batch runtime",
    )
    _add_sweep_axis_arguments(p_sweep)
    p_sweep.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "process", "async", "remote"),
        help="execution backend (async streams results from asyncio-"
        "managed worker subprocesses that share the cache store; remote "
        "serves jobs over TCP to repro-planarity worker processes)",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=None, help="worker count (process/async)"
    )
    p_sweep.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="endpoint the remote backend listens on (required for "
        "--backend remote; port 0 picks an ephemeral port)",
    )
    p_sweep.add_argument(
        "--balance",
        default="hash",
        choices=("hash", "cost"),
        help="--shard placement policy: hash (key-hash counts) or cost "
        "(LPT over the store's measured per-kind/per-n wall-times; "
        "falls back to hash while the cost table is empty)",
    )
    p_sweep.add_argument(
        "--cache-dir",
        default=None,
        help="persist results in a sharded store under this directory "
        "(safe to share between concurrent invocations)",
    )
    p_sweep.add_argument(
        "--shard",
        default=None,
        metavar="I/K",
        help="run only deterministic shard i of k (key-hash split); "
        "point every shard at one --cache-dir and finish with --resume",
    )
    p_sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue a partial sweep: only keys missing from the "
        "cache store execute (requires --cache-dir)",
    )
    p_sweep.add_argument(
        "--markdown", default=None, help="also write the table as markdown"
    )
    p_sweep.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="write a structured trace (spans/events, one JSONL per "
        "participating process) under this directory; inspect with "
        "`repro-planarity trace view DIR`",
    )
    p_sweep.add_argument(
        "--progress",
        action="store_true",
        help="live stderr dashboard: done/total, cache hits, workers, "
        "throughput, CostModel ETA, straggler flags",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent sweep service (clients: submit; "
        "workers: worker --connect ... --reconnect)",
    )
    p_serve.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="endpoint to listen on (port 0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="sharded store shared with workers: submissions are "
        "answered from it where possible and every executed job is "
        "appended exactly once",
    )
    p_serve.add_argument(
        "--heartbeat",
        type=float,
        default=10.0,
        help="idle-worker ping interval in seconds (default 10)",
    )
    p_serve.add_argument(
        "--max-clients",
        type=int,
        default=16,
        help="admission bound on concurrent client sessions (default 16)",
    )
    p_serve.add_argument(
        "--max-pending",
        type=int,
        default=100_000,
        help="admission bound on queued jobs across all sessions "
        "(default 100000)",
    )
    p_serve.add_argument(
        "--no-speculate",
        dest="speculate",
        action="store_false",
        help="disable straggler re-dispatch (on by default: jobs "
        "running far past their CostModel prediction get a second "
        "copy; first result wins)",
    )
    p_serve.set_defaults(func=_cmd_serve, speculate=True)

    p_submit = sub.add_parser(
        "submit",
        help="submit one sweep to a `serve` endpoint (or run it "
        "locally through the same Client facade)",
    )
    _add_sweep_axis_arguments(p_submit)
    p_submit.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="a running `repro-planarity serve` endpoint; omit to run "
        "locally on --backend",
    )
    p_submit.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "process", "async"),
        help="local execution backend when no --connect is given "
        "(records are identical to the service's)",
    )
    p_submit.add_argument(
        "--cache-dir",
        default=None,
        help="sharded store for the local path (hits stream back "
        "without executing, like the service's store hits)",
    )
    p_submit.add_argument(
        "--name",
        default=None,
        help="client display name in the service's logs and telemetry",
    )
    p_submit.add_argument(
        "--markdown", default=None, help="also write the table as markdown"
    )
    p_submit.add_argument(
        "--progress",
        action="store_true",
        help="print progress frames to stderr as the service streams "
        "records back",
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_worker = sub.add_parser(
        "worker",
        help="join a `sweep --backend remote` server and serve jobs",
    )
    p_worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the sweep server's --listen endpoint",
    )
    p_worker.add_argument(
        "--store",
        default=None,
        help="sharded store directory (defaults to the server's, when "
        "this host can reach it)",
    )
    p_worker.add_argument(
        "--retry-seconds",
        type=float,
        default=30.0,
        help="how long to retry the initial connection (default 30)",
    )
    p_worker.add_argument(
        "--reconnect",
        action="store_true",
        help="fleet mode (serve): redial with capped backoff + jitter "
        "when the server drops the connection; only an exit frame or "
        "a handshake rejection ends the worker",
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_trace = sub.add_parser(
        "trace", help="inspect a telemetry trace directory (sweep --trace)"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tview = trace_sub.add_parser(
        "view", help="render the merged span tree as indented text"
    )
    p_tview.add_argument("trace_dir", help="trace directory to read")
    p_tview.add_argument(
        "--max-lines",
        type=int,
        default=200,
        help="truncate the rendering after this many lines (default 200)",
    )
    p_tview.set_defaults(func=_cmd_trace)
    p_ttop = trace_sub.add_parser(
        "top", help="rank span groups by total time (slowest first)"
    )
    p_ttop.add_argument("trace_dir", help="trace directory to read")
    p_ttop.add_argument(
        "--name",
        default=None,
        help="restrict to one span name (e.g. job)",
    )
    p_ttop.add_argument(
        "--limit", type=int, default=20, help="rows to print (default 20)"
    )
    p_ttop.set_defaults(func=_cmd_trace)
    p_texport = trace_sub.add_parser(
        "export", help="write the merged trace to one JSON file"
    )
    p_texport.add_argument("trace_dir", help="trace directory to read")
    p_texport.add_argument(
        "--out", required=True, help="output JSON file path"
    )
    p_texport.add_argument(
        "--chrome",
        action="store_true",
        help="emit Chrome trace_event format (load in chrome://tracing "
        "or Perfetto) instead of the raw merged event list",
    )
    p_texport.set_defaults(func=_cmd_trace)

    p_cache = sub.add_parser(
        "cache", help="inspect or garbage-collect a sharded result store"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_stats = cache_sub.add_parser("stats", help="store usage summary")
    p_stats.add_argument(
        "--cache-dir", required=True, help="store directory to inspect"
    )
    p_stats.set_defaults(func=_cmd_cache)
    p_gc = cache_sub.add_parser(
        "gc", help="expire by TTL and/or shrink to a byte budget"
    )
    p_gc.add_argument(
        "--cache-dir", required=True, help="store directory to collect"
    )
    p_gc.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="drop entries older than this many seconds",
    )
    p_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="keep only the newest entries fitting in this many bytes",
    )
    p_gc.add_argument(
        "--compact",
        action="store_true",
        help="allow a bound-less run (newest-wins rewrite only)",
    )
    p_gc.add_argument(
        "--grace",
        type=float,
        default=60.0,
        help="never collect entries newer than this many seconds "
        "(concurrent-writer / clock-skew guard; default 60)",
    )
    p_gc.set_defaults(func=_cmd_cache)
    p_dump = cache_sub.add_parser(
        "dump", help="print every live (key, stamp, record), sorted by key"
    )
    p_dump.add_argument(
        "--cache-dir", required=True, help="store directory to dump"
    )
    p_dump.add_argument(
        "--json",
        action="store_true",
        help="one canonical JSON object per line (machine-diffable; the "
        "CI migration round-trip compares these)",
    )
    p_dump.set_defaults(func=_cmd_cache)
    p_migrate = cache_sub.add_parser(
        "migrate",
        help="rewrite every shard into the target record format "
        "(.jsonl <-> .rbin), dropping dead duplicates",
    )
    p_migrate.add_argument(
        "--cache-dir", required=True, help="store directory to migrate"
    )
    p_migrate.add_argument(
        "--format",
        default="rbin",
        choices=["rbin", "jsonl"],
        help="target record format (default rbin; jsonl downgrades for "
        "tools that still want line-oriented shards)",
    )
    p_migrate.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
