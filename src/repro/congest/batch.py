"""Graph-batched simulator: run B trials as one array program.

The dense plane (PR 3) vectorized one simulation's *storage*; this
module vectorizes *across trials*: the CSR edge-slot buffers of ``B``
same-shape (or padded) topologies are stacked into ``(B, slots)``
tensors (:class:`BatchTopology` + the
:class:`~repro.congest.plane_batched.BatchedMessagePlane`) and the
bundled vectorizable protocols step every trial of a sweep cell in
lockstep through per-program array kernels.

Layout
------

Trials are padded to a common shape.  With ``n_pad = max(n_b)`` and
``slots_pad = max(2 * m_b)``:

* node tensors have shape ``(B, n_pad + 1)``; column ``n_pad`` is a
  **dummy node** (degree 0, halted from round 0) that padding slots
  point at, so gathers from ragged batches never need masking;
* slot tensors have shape ``(B, slots_pad + 1)``; the one extra pad
  column keeps every trial's dummy segment start strictly inside the
  flattened array, which makes ``ufunc.reduceat`` receive reductions
  safe even for the widest trial in the batch.

Receive reductions run over the flattened ``(B * slots_alloc,)`` slot
tensors with per-``(trial, node)`` segment starts; rows of padding
nodes and degree-0 nodes are post-masked to the reduction identity.

Equivalence contract
--------------------

Per trial, a batched run is **bit-identical to the scalar dense plane
under the ``fast`` profile**: outputs, rounds, halting, message/bit
totals, ``max_message_bits`` and over-budget counts all match, because
the kernels replicate the fast profile's pure-broadcast accounting
exactly (degree-0 senders are skipped *before* sizing; every sized
payload updates ``max_message_bits``; over-budget broadcasts charge
``degree`` messages).  The differential suite in
``tests/test_congest_batched.py`` certifies this across every bundled
generator and program, including ragged batches and mid-batch halting.

Active-set masking: a halted trial (or node) simply drops out of the
``live`` masks -- the tensors never resize, so the engine's per-round
cost is shape-constant while the scalar scheduler's shrinks.  The
batch wins by replacing per-node Python dispatch with a handful of
array ops per round.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from .network import SimulationResult
from .topology import CompiledTopology, compile_topology
from .xp import asnumpy, get_xp

BIG = 1 << 60
"""Reduction identity for minima (larger than any distance or round)."""

WASTE_ENV_VAR = "REPRO_SIM_BATCH_WASTE"
"""Environment override for the default padding-waste bound."""

DEFAULT_PAD_WASTE = 4.0
"""Default :func:`pad_groups` slot-padding bound (factor over the
group's smallest member)."""


def resolve_pad_waste(waste: Optional[float] = None) -> float:
    """Resolve the padding-waste bound (arg, then env, then 4.0).

    The bound caps how much a ragged batch may pad its smallest member:
    a group never allocates more than ``waste`` times the slot count of
    its smallest trial.  Must be >= 1 (a group of one pads nothing).
    """
    if waste is None:
        raw = os.environ.get(WASTE_ENV_VAR)
        waste = float(raw) if raw else DEFAULT_PAD_WASTE
    waste = float(waste)
    if waste < 1.0:
        raise ValueError(f"pad waste bound must be >= 1, got {waste}")
    return waste


def _resolve_xp(xp):
    if xp is None or isinstance(xp, str):
        return get_xp(xp)
    return xp


class BatchTopology:
    """B compiled topologies stacked into padded batch tensors.

    Attributes:
        topologies: the stacked :class:`CompiledTopology` objects.
        B: batch size.
        n_pad: widest trial's node count; node tensors have
            ``n_pad + 1`` columns (the extra one is the dummy node).
        slots_alloc: slot-tensor width (``max(2 m_b) + 1``).
        sender: ``(B, slots_alloc)`` int64 -- dense index of the node
            whose broadcast lands in each slot; padding points at the
            dummy node.
        degrees: ``(B, n_pad + 1)`` int64 dense degree table (0 on
            padding and the dummy).
        node_mask: ``(B, n_pad + 1)`` bool -- True on real nodes.
        n / bandwidth: per-trial node counts and bandwidth budgets as
            ``(B,)`` device arrays (`n_np` / ``bandwidth_np`` are the
            host copies result assembly uses).
    """

    def __init__(
        self,
        topologies: Sequence,
        xp=None,
    ):
        import numpy as np

        xp = _resolve_xp(xp)
        compiled = [
            t if isinstance(t, CompiledTopology) else compile_topology(t)
            for t in topologies
        ]
        if not compiled:
            raise ValueError("BatchTopology needs at least one topology")
        B = len(compiled)
        n_np = np.array([t.n for t in compiled], dtype=np.int64)
        slot_counts = np.array([2 * t.m for t in compiled], dtype=np.int64)
        n_pad = int(n_np.max())
        N1 = n_pad + 1
        S = int(slot_counts.max()) + 1  # +1 pad column: see module doc

        sender = np.full((B, S), n_pad, dtype=np.int64)
        receiver = np.full((B, S), n_pad, dtype=np.int64)
        degrees = np.zeros((B, N1), dtype=np.int64)
        node_mask = np.zeros((B, N1), dtype=bool)
        seg_starts = np.empty(B * N1, dtype=np.int64)
        for b, topology in enumerate(compiled):
            arrays = topology.batch_arrays()
            k = len(arrays.indices)
            sender[b, :k] = arrays.indices
            receiver[b, :k] = arrays.row_owner
            degrees[b, : topology.n] = arrays.degrees
            node_mask[b, : topology.n] = True
            row = seg_starts[b * N1 : (b + 1) * N1]
            row[: topology.n] = arrays.indptr[:-1]
            row[topology.n :] = k
            row += b * S

        self.topologies = compiled
        self.xp = xp
        self.B = B
        self.n_pad = n_pad
        self.slots_alloc = S
        self.n_np = n_np
        self.bandwidth_np = np.array(
            [t.bandwidth_bits for t in compiled], dtype=np.int64
        )
        self.n = xp.asarray(n_np)
        self.bandwidth = xp.asarray(self.bandwidth_np)
        self.sender = xp.asarray(sender)
        self.degrees = xp.asarray(degrees)
        self.node_mask = xp.asarray(node_mask)
        self.seg_starts = xp.asarray(seg_starts)
        self.empty_rows = self.degrees == 0
        # cupy has no ufunc.reduceat; its scatter `.at` ops drive the
        # fallback formulation over per-slot flat receiver ids.
        self._use_reduceat = hasattr(xp.minimum, "reduceat")
        self._flat_receiver = (
            xp.arange(B, dtype=xp.int64)[:, None] * N1 + xp.asarray(receiver)
        ).reshape(-1)

    def node_zeros(self, dtype=None):
        """A fresh ``(B, n_pad + 1)`` node tensor of zeros."""
        xp = self.xp
        return xp.zeros((self.B, self.n_pad + 1), dtype=dtype or xp.int64)

    def node_full(self, fill, dtype=None):
        """A fresh ``(B, n_pad + 1)`` node tensor filled with *fill*."""
        xp = self.xp
        return xp.full((self.B, self.n_pad + 1), fill, dtype=dtype or xp.int64)

    # -- receive-side segment reductions --------------------------------------

    def reduce_min(self, slot_values, identity=BIG):
        """Per-node minimum over each receiver's row slice.

        *slot_values* must already carry *identity* in non-live slots
        (callers mask with ``where(arrived, value, identity)``), so
        padding regions reduce harmlessly; degree-0 rows (including the
        dummy node and ragged padding) are post-masked to *identity*.
        """
        xp = self.xp
        N1 = self.n_pad + 1
        if self._use_reduceat:
            out = xp.minimum.reduceat(
                slot_values.reshape(-1), self.seg_starts
            ).reshape(self.B, N1)
        else:
            out = xp.full(self.B * N1, identity, dtype=slot_values.dtype)
            xp.minimum.at(out, self._flat_receiver, slot_values.reshape(-1))
            out = out.reshape(self.B, N1)
        return xp.where(self.empty_rows, identity, out)

    def reduce_sum(self, slot_values):
        """Per-node sum over each receiver's row slice (identity 0)."""
        xp = self.xp
        N1 = self.n_pad + 1
        if self._use_reduceat:
            out = xp.add.reduceat(
                slot_values.reshape(-1), self.seg_starts
            ).reshape(self.B, N1)
        else:
            out = xp.zeros(self.B * N1, dtype=slot_values.dtype)
            xp.add.at(out, self._flat_receiver, slot_values.reshape(-1))
            out = out.reshape(self.B, N1)
        return xp.where(self.empty_rows, 0, out)


def pad_groups(
    topologies: Sequence[CompiledTopology],
    limit: int,
    waste: Optional[float] = None,
) -> List[List[int]]:
    """Group trial indices into batches with bounded padding waste.

    Sorts trials by ``(n, 2m)`` and cuts a new group whenever adding
    the next trial would exceed *limit* members or pad the group's
    smallest member by more than a factor of *waste* in slots.  Returns
    index lists into *topologies* (every index appears exactly once),
    so callers can batch heterogeneous sweep cells without drowning a
    sparse trial in a dense trial's padding.  ``waste=None`` resolves
    via :func:`resolve_pad_waste` (``REPRO_SIM_BATCH_WASTE``, then 4.0).
    """
    if limit < 1:
        raise ValueError(f"limit must be positive, got {limit}")
    waste = resolve_pad_waste(waste)
    order = sorted(
        range(len(topologies)),
        key=lambda i: (topologies[i].n, topologies[i].m),
    )
    groups: List[List[int]] = []
    group: List[int] = []
    floor_slots = 0
    for i in order:
        slots = max(1, 2 * topologies[i].m)
        if not group:
            group = [i]
            floor_slots = slots
            continue
        if len(group) >= limit or slots > waste * floor_slots:
            groups.append(group)
            group = [i]
            floor_slots = slots
            continue
        group.append(i)
    if group:
        groups.append(group)
    return groups


class BatchAccounting:
    """Per-trial fast-profile accounting over one batched run.

    Replicates :meth:`FastProfile._broadcast_dense` arithmetic exactly:
    a degree-0 sender is skipped before sizing (it never touches
    ``max_message_bits``), every sized payload updates the running
    maximum, and an over-budget broadcast charges ``degree`` messages
    (or raises under ``strict``, naming the first offending sender in
    dense order).
    """

    def __init__(self, batch: BatchTopology, strict: bool):
        xp = batch.xp
        self.batch = batch
        self.xp = xp
        self.strict = strict
        self.messages = xp.zeros(batch.B, dtype=xp.int64)
        self.bits = xp.zeros(batch.B, dtype=xp.int64)
        self.max_bits = xp.zeros(batch.B, dtype=xp.int64)
        self.over = xp.zeros(batch.B, dtype=xp.int64)

    def account(self, send_mask, payload_bits) -> None:
        xp = self.xp
        batch = self.batch
        degrees = batch.degrees
        send_degrees = xp.where(send_mask, degrees, 0)
        self.messages += send_degrees.sum(axis=1)
        self.bits += (send_degrees * payload_bits).sum(axis=1)
        sized = send_mask & (degrees > 0)
        if not bool(sized.any()):
            return
        round_max = xp.where(sized, payload_bits, 0).max(axis=1)
        self.max_bits = xp.maximum(self.max_bits, round_max)
        over = sized & (payload_bits > batch.bandwidth[:, None])
        if bool(over.any()):
            if self.strict:
                self._raise_first(over, payload_bits)
            self.over += xp.where(over, degrees, 0).sum(axis=1)

    def _raise_first(self, over, payload_bits) -> None:
        import numpy as np

        from ..errors import BandwidthExceededError

        b, v = (int(x) for x in np.argwhere(asnumpy(over))[0])
        topology = self.batch.topologies[b]
        node = topology.nodes[v]
        raise BandwidthExceededError(
            node,
            topology.neighbors[node][0],
            int(asnumpy(payload_bits)[b, v]),
            int(self.batch.bandwidth_np[b]),
        )


class BatchKernel:
    """Array-state step function for one program over a batch.

    Subclasses (registered via :func:`register_batch_kernel`, one per
    vectorizable program) own:

    * ``lanes`` -- payload lanes their messages occupy;
    * ``strict`` -- whether the scalar entry point runs with
      ``strict_bandwidth=True`` (bfs/flood/forest do, the storm does
      not);
    * :meth:`max_rounds` -- the per-trial round limits the scalar entry
      points use (``n + 2``, ``budget + 3``, ``storm_rounds + 2``);
    * :meth:`step` -- one lockstep round: read last round's arrivals
      from the plane, mutate node state, and return
      ``(send_mask, lane_values, payload_bits)`` node tensors;
    * :meth:`outputs` -- assemble one trial's ``node id -> output``
      dict on the host (runs once, after the loop).
    """

    lanes = 0
    strict = True

    def __init__(self, batch: BatchTopology, params: Dict[str, Any]):
        self.batch = batch
        self.params = params
        self.xp = batch.xp
        # Padding columns and the dummy node start (and stay) halted;
        # kernels flip real nodes as their programs halt.
        self.halted = ~batch.node_mask

    def max_rounds(self):
        """Per-trial round limits as a host numpy int64 array."""
        raise NotImplementedError

    def all_halted(self):
        """Per-trial ``(B,)`` bool: every program halted."""
        return self.halted.all(axis=1)

    def step(self, round_index: int, live, plane) -> Tuple[Any, Sequence, Any]:
        """Advance one round for the trials selected by *live*."""
        raise NotImplementedError

    def outputs(self, trial: int) -> Dict[Any, Any]:
        """Assemble trial *trial*'s ``node id -> output`` mapping."""
        raise NotImplementedError


BATCH_KERNELS: Dict[str, Type[BatchKernel]] = {}
"""Registry mapping program name -> kernel class."""


def register_batch_kernel(name: str, cls: Type[BatchKernel]) -> None:
    """Register *cls* as program *name*'s batch kernel (overwrites)."""
    BATCH_KERNELS[name] = cls


def batch_kernels() -> Tuple[str, ...]:
    """Programs with a registered batch kernel, sorted."""
    from . import programs  # noqa: F401 -- importing registers kernels

    return tuple(sorted(BATCH_KERNELS))


def run_batched(
    program: str,
    topologies: Sequence,
    params: Optional[Dict[str, Any]] = None,
    xp=None,
) -> List[SimulationResult]:
    """Run *program* over every topology in one batched simulation.

    Accepts graphs or :class:`CompiledTopology` objects (or a prebuilt
    :class:`BatchTopology`); returns one scalar-shaped
    :class:`~repro.congest.network.SimulationResult` per trial, in
    input order, each bit-identical to a scalar dense-plane run under
    the ``fast`` profile.  *params* carries the program knobs the
    scalar entry points take (``alpha`` for the forest decomposition,
    ``storm_rounds`` for the storm; roots default to each trial's
    minimum node id exactly like ``simulate_program`` jobs).
    """
    from . import programs  # noqa: F401 -- importing registers kernels

    try:
        kernel_cls = BATCH_KERNELS[program]
    except KeyError:
        raise ValueError(
            f"no batch kernel for program {program!r}; "
            f"registered: {batch_kernels()}"
        ) from None
    if isinstance(topologies, BatchTopology):
        batch = topologies
    else:
        batch = BatchTopology(topologies, xp=xp)
    xp_mod = batch.xp
    kernel = kernel_cls(batch, dict(params or {}))

    from .plane_batched import BatchedMessagePlane

    plane = BatchedMessagePlane(batch, kernel.lanes)
    accounting = BatchAccounting(batch, strict=kernel.strict)
    max_rounds_np = kernel.max_rounds()
    max_rounds = xp_mod.asarray(max_rounds_np)
    rounds = xp_mod.zeros(batch.B, dtype=xp_mod.int64)
    limit = int(max_rounds_np.max())
    for round_index in range(limit):
        live = ~kernel.all_halted() & (round_index < max_rounds)
        if not bool(live.any()):
            break
        rounds += live
        send_mask, lane_values, payload_bits = kernel.step(
            round_index, live, plane
        )
        send_mask = send_mask & batch.node_mask
        accounting.account(send_mask, payload_bits)
        plane.send(send_mask, lane_values)
        plane.swap()

    rounds_np = asnumpy(rounds)
    halted_np = asnumpy(kernel.all_halted())
    messages_np = asnumpy(accounting.messages)
    bits_np = asnumpy(accounting.bits)
    max_bits_np = asnumpy(accounting.max_bits)
    over_np = asnumpy(accounting.over)
    results: List[SimulationResult] = []
    for b in range(batch.B):
        results.append(
            SimulationResult(
                rounds=int(rounds_np[b]),
                outputs=kernel.outputs(b),
                halted=bool(halted_np[b]),
                total_messages=int(messages_np[b]),
                total_bits=int(bits_np[b]),
                max_message_bits=int(max_bits_np[b]),
                bandwidth_bits=int(batch.bandwidth_np[b]),
                over_budget_messages=int(over_np[b]),
                profile="fast",
            )
        )
    return results
