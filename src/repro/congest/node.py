"""Node-program abstractions for the CONGEST simulator.

A :class:`NodeProgram` is the per-node algorithm: the network instantiates
one program per node and drives them in synchronous rounds.  In round ``r``
every program's :meth:`NodeProgram.step` is called with the messages that
were addressed to it in round ``r - 1`` and returns the messages it wants
delivered in round ``r`` (an "outbox": a mapping from neighbor id to
message payload).

Programs signal completion by calling :meth:`NodeProgram.halt`.  A halted
program stops being stepped but still *receives* nothing (synchronous
model: messages to halted nodes are counted but dropped).  The simulation
ends when every program has halted or the round limit is reached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

NodeId = Any
Outbox = Dict[NodeId, Any]
Inbox = Mapping[NodeId, Any]

BROADCAST = "__broadcast__"
"""Sentinel key: an outbox entry ``{BROADCAST: msg}`` sends *msg* to every
neighbor.  This mirrors the local-broadcast flavour of CONGEST and keeps
program code concise; bandwidth is charged per edge as usual."""


@dataclass
class NodeContext:
    """Static, per-node information handed to a program at construction.

    Attributes:
        node: this node's identifier.
        neighbors: identifiers of adjacent nodes, in sorted order.
        n: number of nodes in the network (CONGEST nodes know ``n``,
           or at least a polynomial upper bound; the paper assumes ids in
           ``[n]`` so knowing ``n`` up to a constant power is standard).
        rng: per-node deterministic random generator (seeded from the
             network seed and the node id).
        config: arbitrary read-only algorithm parameters shared by all
             nodes (e.g. the distance parameter epsilon).
    """

    node: NodeId
    neighbors: Tuple[NodeId, ...]
    n: int
    rng: random.Random
    config: Mapping[str, Any] = field(default_factory=dict)

    @property
    def degree(self) -> int:
        """Number of incident edges."""
        return len(self.neighbors)


class NodeProgram:
    """Base class for per-node CONGEST algorithms.

    Subclasses override :meth:`step`.  The default implementation of the
    lifecycle helpers stores an ``output`` value and a ``halted`` flag that
    the network collects into the simulation result.
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        self.ctx = ctx
        self.output: Any = None
        self._halted = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def halted(self) -> bool:
        """True once the program has called :meth:`halt`."""
        return self._halted

    def halt(self, output: Any = None) -> None:
        """Stop participating in future rounds, optionally recording output."""
        if output is not None:
            self.output = output
        self._halted = True

    # -- behaviour ---------------------------------------------------------

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Compute one synchronous round.

        Args:
            round_index: 0-based round number.  In round 0 the inbox is
                always empty (no messages have been sent yet).
            inbox: messages addressed to this node in the previous round,
                keyed by sender.

        Returns:
            The outbox: a mapping from neighbor id (or :data:`BROADCAST`)
            to the message payload, or ``None`` for "send nothing".
        """
        raise NotImplementedError

    # -- conveniences for subclasses ----------------------------------------

    def broadcast(self, message: Any) -> Outbox:
        """Return an outbox that sends *message* to every neighbor."""
        return {BROADCAST: message}

    def silence(self) -> Outbox:
        """Return an empty outbox (send nothing this round)."""
        return {}
