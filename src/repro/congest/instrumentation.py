"""Pluggable instrumentation profiles for the delivery loop.

:meth:`CongestNetwork.run` used to interleave three concerns inside its
inner loop: *delivery* (moving payloads into next-round inboxes),
*validation* (neighbor and protocol checks), and *accounting* (bit-size
estimation, bandwidth budgeting, message counters).  This module
extracts validation + accounting behind an :class:`InstrumentationProfile`
so callers can trade diagnostic depth for throughput without touching
the scheduler:

* :class:`FaithfulProfile` (``"faithful"``, the default) keeps today's
  exact semantics: every message is validated against the sender's
  neighbor set, every payload runs the full :func:`bit_size` recursion,
  and per-round message/bit statistics are recorded.
* :class:`FastProfile` (``"fast"``) validates each node's explicit
  targets only on that node's first outbox (pure broadcasts are
  neighbor-correct by construction), memoizes :func:`bit_size` for
  repeated payloads, charges pure broadcasts once per payload instead
  of once per edge, and keeps counters only (no per-round stats).

Both profiles deliver the same messages in the same order, so program
outputs, round counts, and halting behavior are identical; the bundled
protocols also produce identical bit/message totals because
:func:`bit_size` is deterministic.  (Caveat: the fast profile's memo is
keyed by ``(type, payload)``, so exotic payloads whose *elements* compare
equal across types -- ``(1,)`` versus ``(True,)`` -- can share a memo
entry and skew the fast profile's bit totals; none of the bundled
programs emit such payloads.)

Profile selection, in precedence order:

1. the ``profile=`` argument to :meth:`CongestNetwork.run` (a name, a
   profile class, or a pre-built instance);
2. the ``REPRO_SIM_PROFILE`` environment variable (which process-pool
   workers inherit, so ``repro-planarity sweep --profile fast`` reaches
   every backend);
3. the ``"faithful"`` default.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Mapping, Tuple, Type, Union

from ..errors import BandwidthExceededError, ProtocolError
from .message import bit_size
from .node import BROADCAST

PROFILE_ENV_VAR = "REPRO_SIM_PROFILE"

Inboxes = Dict[Any, Dict[Any, Any]]


class InstrumentationProfile:
    """Validation + accounting strategy for one simulation run.

    A profile instance is single-use: :meth:`bind` attaches it to a
    topology and resets its counters, then the network calls
    :meth:`begin_round` once per round and :meth:`deliver` once per
    non-empty outbox.  Subclasses implement :meth:`deliver`; it must
    expand the :data:`~repro.congest.node.BROADCAST` sentinel, account
    for every (post-expansion) message, and write payloads into
    ``inboxes`` keyed ``target -> sender -> payload`` (creating target
    dicts lazily -- silent nodes never allocate an inbox).
    """

    name = "abstract"

    #: Whether the dense plane should materialize real inbox dicts for
    #: this profile (bit-identical to the seed) or hand programs a
    #: zero-copy :class:`~repro.congest.plane.SlotInbox` view.
    materialize_inboxes = True

    def bind(self, topology, bandwidth_bits: int, strict_bandwidth: bool) -> None:
        """Attach to *topology* and reset all counters for a fresh run."""
        self._neighbors = topology.neighbors
        self._neighbor_sets = topology.neighbor_sets
        self._bandwidth = bandwidth_bits
        self._strict = strict_bandwidth
        self.total_messages = 0
        self.total_bits = 0
        self.max_message_bits = 0
        self.over_budget = 0

    def begin_round(self, round_index: int) -> None:
        """Hook invoked at the start of every executed round."""

    def deliver(self, node: Any, outbox: Mapping[Any, Any], inboxes: Inboxes) -> None:
        """Validate, account, and deliver one node's outbox (dict plane)."""
        raise NotImplementedError

    def deliver_dense(
        self, idx: int, node: Any, outbox: Mapping[Any, Any], plane, token: int
    ) -> None:
        """Validate, account, and file one node's outbox into edge slots.

        *idx* is the sender's dense index, *plane* the run's
        :class:`~repro.congest.plane.DenseMessagePlane`, and *token* the
        stamp under which next-round readers will scan.
        """
        raise NotImplementedError

    def round_stats(self) -> Tuple[Tuple[int, int], ...]:
        """Per-round ``(messages, bits)`` tuples; empty unless recorded."""
        return ()

    # -- shared helpers -------------------------------------------------------

    def _expand_broadcast(self, node: Any, outbox: Mapping[Any, Any]) -> Dict[Any, Any]:
        """Expand the BROADCAST sentinel; direct entries override it."""
        expanded: Dict[Any, Any] = dict.fromkeys(
            self._neighbors[node], outbox[BROADCAST]
        )
        for target, payload in outbox.items():
            if target != BROADCAST:
                expanded[target] = payload
        return expanded


class FaithfulProfile(InstrumentationProfile):
    """Full validation and accounting on every message (the default).

    Exactly the historical semantics of ``CongestNetwork.run``: strict
    neighbor validation per message, the complete :func:`bit_size`
    recursion per payload, bandwidth budgeting, and a per-round
    ``(messages, bits)`` ledger exposed via :meth:`round_stats`.
    """

    name = "faithful"

    def bind(self, topology, bandwidth_bits: int, strict_bandwidth: bool) -> None:
        super().bind(topology, bandwidth_bits, strict_bandwidth)
        self._rounds: list = []

    def begin_round(self, round_index: int) -> None:
        self._rounds.append([0, 0])

    def round_stats(self) -> Tuple[Tuple[int, int], ...]:
        return tuple((msgs, bits) for msgs, bits in self._rounds)

    def deliver(self, node: Any, outbox: Mapping[Any, Any], inboxes: Inboxes) -> None:
        if BROADCAST in outbox:
            outbox = self._expand_broadcast(node, outbox)
        neighbor_set = self._neighbor_sets[node]
        bandwidth = self._bandwidth
        this_round = self._rounds[-1]
        for target, payload in outbox.items():
            if target not in neighbor_set:
                raise ProtocolError(
                    f"node {node!r} attempted to message non-neighbor "
                    f"{target!r}"
                )
            bits = bit_size(payload)
            self.total_messages += 1
            self.total_bits += bits
            this_round[0] += 1
            this_round[1] += bits
            if bits > self.max_message_bits:
                self.max_message_bits = bits
            if bits > bandwidth:
                if self._strict:
                    raise BandwidthExceededError(node, target, bits, bandwidth)
                self.over_budget += 1
            box = inboxes.get(target)
            if box is None:
                box = inboxes[target] = {}
            box[node] = payload

    def deliver_dense(self, idx, node, outbox, plane, token):
        if BROADCAST in outbox:
            outbox = self._expand_broadcast(node, outbox)
        slots = plane.send_slot[idx]
        owner = plane.row_owner
        data = plane.next_data
        stamp = plane.next_stamp
        mark = plane.next_mark
        count = plane.next_count
        bandwidth = self._bandwidth
        this_round = self._rounds[-1]
        for target, payload in outbox.items():
            slot = slots.get(target)
            if slot is None:
                raise ProtocolError(
                    f"node {node!r} attempted to message non-neighbor "
                    f"{target!r}"
                )
            bits = bit_size(payload)
            self.total_messages += 1
            self.total_bits += bits
            this_round[0] += 1
            this_round[1] += bits
            if bits > self.max_message_bits:
                self.max_message_bits = bits
            if bits > bandwidth:
                if self._strict:
                    raise BandwidthExceededError(node, target, bits, bandwidth)
                self.over_budget += 1
            data[slot] = payload
            stamp[slot] = token
            receiver = owner[slot]
            if mark[receiver] == token:
                count[receiver] += 1
            else:
                mark[receiver] = token
                count[receiver] = 1


class FastProfile(InstrumentationProfile):
    """Throughput-oriented accounting: memoized sizes, elided validation.

    * ``bit_size`` results are memoized per ``(type, payload)``, so a
      payload repeated across rounds (or across a broadcast's edges)
      is sized once.
    * A pure broadcast outbox (``{BROADCAST: payload}`` -- the common
      case for the bundled protocols) is charged arithmetically:
      ``degree`` messages and ``degree * bits`` bits in O(1) accounting
      work, with one delivery write per neighbor.
    * Explicit targets are validated only on each node's first explicit
      outbox; after that first check the profile trusts the program.
      (Bandwidth budgeting stays exact -- ``strict_bandwidth`` raises
      identically to the faithful profile.)
    """

    name = "fast"
    materialize_inboxes = False

    def bind(self, topology, bandwidth_bits: int, strict_bandwidth: bool) -> None:
        super().bind(topology, bandwidth_bits, strict_bandwidth)
        self._bit_memo: Dict[Any, int] = {}
        self._validated: set = set()

    def _bits(self, payload: Any) -> int:
        memo = self._bit_memo
        try:
            return memo[(type(payload), payload)]
        except KeyError:
            bits = bit_size(payload)
            memo[(type(payload), payload)] = bits
        except TypeError:  # unhashable payload (dict/list/set)
            bits = bit_size(payload)
        if bits > self.max_message_bits:
            self.max_message_bits = bits
        return bits

    def deliver(self, node: Any, outbox: Mapping[Any, Any], inboxes: Inboxes) -> None:
        if BROADCAST in outbox:
            if len(outbox) == 1:
                self._deliver_pure_broadcast(node, outbox[BROADCAST], inboxes)
                return
            outbox = self._expand_broadcast(node, outbox)
        if node not in self._validated:
            neighbor_set = self._neighbor_sets[node]
            for target in outbox:
                if target not in neighbor_set:
                    raise ProtocolError(
                        f"node {node!r} attempted to message non-neighbor "
                        f"{target!r}"
                    )
            self._validated.add(node)
        bandwidth = self._bandwidth
        for target, payload in outbox.items():
            bits = self._bits(payload)
            self.total_messages += 1
            self.total_bits += bits
            if bits > bandwidth:
                if self._strict:
                    raise BandwidthExceededError(node, target, bits, bandwidth)
                self.over_budget += 1
            box = inboxes.get(target)
            if box is None:
                box = inboxes[target] = {}
            box[node] = payload

    def _deliver_pure_broadcast(
        self, node: Any, payload: Any, inboxes: Inboxes
    ) -> None:
        neighbors = self._neighbors[node]
        degree = len(neighbors)
        if degree == 0:
            return
        bits = self._bits(payload)
        self.total_messages += degree
        self.total_bits += bits * degree
        if bits > self._bandwidth:
            if self._strict:
                raise BandwidthExceededError(
                    node, neighbors[0], bits, self._bandwidth
                )
            self.over_budget += degree
        for target in neighbors:
            box = inboxes.get(target)
            if box is None:
                box = inboxes[target] = {}
            box[node] = payload

    # -- dense plane ----------------------------------------------------------

    def deliver_dense(self, idx, node, outbox, plane, token):
        if BROADCAST in outbox:
            if len(outbox) == 1:
                self._broadcast_dense(idx, node, outbox[BROADCAST], plane, token)
                return
            outbox = self._expand_broadcast(node, outbox)
        slots = plane.send_slot[idx]
        owner = plane.row_owner
        data = plane.next_data
        stamp = plane.next_stamp
        mark = plane.next_mark
        count = plane.next_count
        bandwidth = self._bandwidth
        for target, payload in outbox.items():
            slot = slots.get(target)
            if slot is None:
                # The slot lookup doubles as the neighbor check, so the
                # dense plane validates every explicit target for free
                # (the dict plane only checked each node's first outbox).
                raise ProtocolError(
                    f"node {node!r} attempted to message non-neighbor "
                    f"{target!r}"
                )
            bits = self._bits(payload)
            self.total_messages += 1
            self.total_bits += bits
            if bits > bandwidth:
                if self._strict:
                    raise BandwidthExceededError(node, target, bits, bandwidth)
                self.over_budget += 1
            data[slot] = payload
            stamp[slot] = token
            receiver = owner[slot]
            if mark[receiver] == token:
                count[receiver] += 1
            else:
                mark[receiver] = token
                count[receiver] = 1

    def _broadcast_dense(self, idx, node, payload, plane, token):
        row_slots = plane.broadcast_slots[idx]
        degree = len(row_slots)
        if degree == 0:
            return
        bits = self._bits(payload)
        self.total_messages += degree
        self.total_bits += bits * degree
        if bits > self._bandwidth:
            if self._strict:
                raise BandwidthExceededError(
                    node, self._neighbors[node][0], bits, self._bandwidth
                )
            self.over_budget += degree
        data = plane.next_data
        stamp = plane.next_stamp
        mark = plane.next_mark
        count = plane.next_count
        for slot, receiver in zip(row_slots, plane.broadcast_targets[idx]):
            data[slot] = payload
            stamp[slot] = token
            if mark[receiver] == token:
                count[receiver] += 1
            else:
                mark[receiver] = token
                count[receiver] = 1


PROFILES: Dict[str, Type[InstrumentationProfile]] = {
    FaithfulProfile.name: FaithfulProfile,
    FastProfile.name: FastProfile,
}
"""Registry behind ``CongestNetwork.run(profile=...)`` name lookup."""


def register_profile(name: str, cls: Type[InstrumentationProfile]) -> None:
    """Register a custom profile class under *name* (overwrites)."""
    PROFILES[name] = cls


def resolve_profile(
    profile: Union[
        None, str, InstrumentationProfile, Type[InstrumentationProfile]
    ] = None,
) -> InstrumentationProfile:
    """Resolve *profile* to a fresh (or caller-provided) instance.

    ``None`` falls back to the ``REPRO_SIM_PROFILE`` environment
    variable, then to ``"faithful"``.
    """
    if profile is None:
        profile = os.environ.get(PROFILE_ENV_VAR) or "faithful"
    if isinstance(profile, InstrumentationProfile):
        return profile
    if isinstance(profile, type) and issubclass(profile, InstrumentationProfile):
        return profile()
    try:
        return PROFILES[profile]()
    except KeyError:
        raise ValueError(
            f"unknown instrumentation profile {profile!r}; "
            f"registered: {sorted(PROFILES)}"
        ) from None
