"""Per-part local verification protocols (cycle-freeness, bipartiteness).

Corollary 16 of the paper verifies hereditary properties within each part
after partitioning: build a BFS tree, then

* cycle-freeness: any non-tree edge closes a cycle -> reject;
* bipartiteness: any non-tree edge whose endpoints have equal BFS-depth
  parity closes an odd cycle -> reject.

These run as two-phase protocols: a BFS phase (see
:mod:`repro.congest.programs.bfs`) followed by a single exchange in which
nodes announce ``(depth, parent)`` and inspect their incident edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import networkx as nx

from ..network import CongestNetwork
from .tags import MSG_INFO
from ..node import Inbox, NodeContext, NodeProgram, Outbox
from .bfs import bfs_tree


class _PartCheckProgram(NodeProgram):
    """Shared two-round skeleton: announce (depth, parent), then verify."""

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._depth: int = ctx.config["depths"][ctx.node]
        self._parent: Optional[Any] = ctx.config["parents"].get(ctx.node)

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        if round_index == 0:
            return self.broadcast((MSG_INFO, self._depth, self._parent))
        verdict = self._verdict(inbox)
        self.halt(verdict)
        return self.silence()

    def _is_tree_edge(self, neighbor: Any, neighbor_parent: Any) -> bool:
        return neighbor == self._parent or neighbor_parent == self.ctx.node

    def _verdict(self, inbox: Inbox) -> str:
        raise NotImplementedError


class CycleCheckProgram(_PartCheckProgram):
    """Reject when any incident non-tree edge exists (a cycle witness)."""

    def _verdict(self, inbox: Inbox) -> str:
        for sender, msg in inbox.items():
            _tag, _depth, parent = msg
            if not self._is_tree_edge(sender, parent):
                return "reject"
        return "accept"


class BipartiteCheckProgram(_PartCheckProgram):
    """Reject when a non-tree edge joins equal BFS-parity endpoints."""

    def _verdict(self, inbox: Inbox) -> str:
        for sender, msg in inbox.items():
            _tag, depth, parent = msg
            if not self._is_tree_edge(sender, parent) and depth % 2 == self._depth % 2:
                return "reject"
        return "accept"


@dataclass
class PartCheckResult:
    """Outcome of a simulated per-part check."""

    accepted: bool
    rejecting_nodes: Tuple[Any, ...]
    bfs_rounds: int
    check_rounds: int

    @property
    def rounds(self) -> int:
        """Total rounds across both phases."""
        return self.bfs_rounds + self.check_rounds


def _run_check(
    graph: nx.Graph,
    root: Any,
    program_cls,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    profile=None,
) -> PartCheckResult:
    parents, depths, bfs_rounds = bfs_tree(
        graph, root, bandwidth_bits, seed=seed, profile=profile
    )
    if len(depths) != graph.number_of_nodes():
        raise ValueError("graph must be connected for per-part checks")
    # Both phases share one compiled topology (memoized per graph).
    network = CongestNetwork(graph, bandwidth_bits=bandwidth_bits, seed=seed)
    result = network.run(
        program_cls,
        max_rounds=4,
        config={"parents": parents, "depths": depths},
        strict_bandwidth=True,
        profile=profile,
    )
    rejecting = tuple(
        sorted(v for v, verdict in result.outputs.items() if verdict == "reject")
    )
    return PartCheckResult(
        accepted=not rejecting,
        rejecting_nodes=rejecting,
        bfs_rounds=bfs_rounds,
        check_rounds=result.rounds,
    )


def run_cycle_check_simulated(
    graph: nx.Graph,
    root: Any,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    profile=None,
) -> PartCheckResult:
    """BFS + cycle check on a connected graph; accept iff it is a tree."""
    return _run_check(graph, root, CycleCheckProgram, bandwidth_bits, seed, profile)


def run_bipartite_check_simulated(
    graph: nx.Graph,
    root: Any,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    profile=None,
) -> PartCheckResult:
    """BFS + odd-cycle check on a connected graph; accept iff bipartite."""
    return _run_check(graph, root, BipartiteCheckProgram, bandwidth_bits, seed, profile)
