"""Compact integer message tags shared by the node programs.

CONGEST messages carry ``O(log n)`` bits; using small integer tags (rather
than strings) keeps every protocol message within the default bandwidth
budget of a constant number of id-sized words.
"""

MSG_FLOOD = 0
MSG_BFS = 1
MSG_ACTIVE = 2
MSG_INACTIVE = 3
MSG_CV = 4
MSG_INFO = 5
MSG_STORM = 6
