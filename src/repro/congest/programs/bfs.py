"""Distributed BFS-tree construction (paper Section 2.2.1).

The root sends ``(root, 0)``; a node adopts as parent the minimum-id
neighbor among those whose message arrived in the earliest round, then
forwards ``(root, depth)``.  This is exactly the preprocessing step Stage
II uses to build the per-part BFS trees ``T_B``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import networkx as nx

from ..network import CongestNetwork
from .tags import MSG_BFS
from ..node import Inbox, NodeContext, NodeProgram, Outbox


class BFSTreeProgram(NodeProgram):
    """Build a BFS tree rooted at ``config['root']``.

    Output per node: ``(parent, depth)`` with ``parent is None`` for the
    root; nodes never reached halt with output ``None`` when the round
    limit expires.
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._parent: Optional[Any] = None
        self._depth: Optional[int] = None
        self._announced = False

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Adopt the min-id earliest announcer as parent, then announce."""
        if self._announced:
            self.halt((self._parent, self._depth))
            return self.silence()
        if round_index == 0 and self.ctx.node == self.ctx.config["root"]:
            self._depth = 0
            self._announced = True
            return self.broadcast((MSG_BFS, 0))
        if self._depth is None and inbox:
            offers = sorted(
                (msg[1], sender) for sender, msg in inbox.items() if msg[0] == MSG_BFS
            )
            if offers:
                depth, parent = offers[0]
                self._parent = parent
                self._depth = depth + 1
                self._announced = True
                return self.broadcast((MSG_BFS, self._depth))
        return self.silence()


def bfs_tree(
    graph: nx.Graph,
    root: Any,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> Tuple[Dict[Any, Any], Dict[Any, int], int]:
    """Run :class:`BFSTreeProgram`; return (parents, depths, rounds).

    ``parents`` maps each reached non-root node to its BFS parent;
    ``depths`` maps each reached node to its BFS depth.  *topology* and
    *profile* pass through to :class:`CongestNetwork` (the protocol is
    deterministic, so *seed* only pins the per-node RNG streams).
    """
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        BFSTreeProgram,
        max_rounds=network.n + 2,
        config={"root": root},
        strict_bandwidth=True,
        profile=profile,
    )
    parents: Dict[Any, Any] = {}
    depths: Dict[Any, int] = {}
    for node, out in result.outputs.items():
        if out is None:
            continue
        parent, depth = out
        depths[node] = depth
        if parent is not None:
            parents[node] = parent
    return parents, depths, result.rounds
