"""Distributed BFS-tree construction (paper Section 2.2.1).

The root sends ``(root, 0)``; a node adopts as parent the minimum-id
neighbor among those whose message arrived in the earliest round, then
forwards ``(root, depth)``.  This is exactly the preprocessing step Stage
II uses to build the per-part BFS trees ``T_B``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import networkx as nx

from ..batch import BIG, BatchKernel, register_batch_kernel
from ..message import bit_size
from ..network import CongestNetwork
from .tags import MSG_BFS
from ..node import Inbox, NodeContext, NodeProgram, Outbox
from ..xp import asnumpy, int_bit_length


class BFSTreeProgram(NodeProgram):
    """Build a BFS tree rooted at ``config['root']``.

    Output per node: ``(parent, depth)`` with ``parent is None`` for the
    root; nodes never reached halt with output ``None`` when the round
    limit expires.
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._parent: Optional[Any] = None
        self._depth: Optional[int] = None
        self._announced = False

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Adopt the min-id earliest announcer as parent, then announce."""
        if self._announced:
            self.halt((self._parent, self._depth))
            return self.silence()
        if round_index == 0 and self.ctx.node == self.ctx.config["root"]:
            self._depth = 0
            self._announced = True
            return self.broadcast((MSG_BFS, 0))
        if self._depth is None and inbox:
            offers = sorted(
                (msg[1], sender) for sender, msg in inbox.items() if msg[0] == MSG_BFS
            )
            if offers:
                depth, parent = offers[0]
                self._parent = parent
                self._depth = depth + 1
                self._announced = True
                return self.broadcast((MSG_BFS, self._depth))
        return self.silence()


class BFSBatchKernel(BatchKernel):
    """Array-state :class:`BFSTreeProgram`: depth lane + sender min-reduce.

    All of a node's first-round arrivals carry the same depth (BFS
    invariant: only depth ``d-1`` neighbors have announced when the
    token reaches depth ``d``), so the scalar's ``sorted((depth,
    sender))[0]`` collapses to two independent min-reductions -- the
    arrived depth lane and the static sender table.  Dense indices
    follow sorted-id order, so the minimum dense index *is* the
    minimum-id parent.  Root is dense index 0 (minimum node id).
    """

    lanes = 1
    strict = True

    def __init__(self, batch, params):  # noqa: D107
        super().__init__(batch, params)
        self.announced = batch.node_zeros(dtype=bool)
        self.depth = batch.node_full(-1)
        self.parent = batch.node_full(-1)
        self.base_bits = bit_size((MSG_BFS, 0))

    def max_rounds(self):
        return self.batch.n_np + 2

    def step(self, round_index, live, plane):
        xp = self.xp
        batch = self.batch
        halt_now = live[:, None] & self.announced & ~self.halted
        self.halted = self.halted | halt_now
        if round_index == 0:
            send = xp.zeros_like(self.announced)
            send[:, 0] = live
            self.depth = xp.where(send, 0, self.depth)
        else:
            depths = xp.where(plane.cur_arrived, plane.cur_lanes[0], BIG)
            nearest = batch.reduce_min(depths)
            senders = xp.where(plane.cur_arrived, batch.sender, BIG)
            min_sender = batch.reduce_min(senders)
            send = live[:, None] & ~self.announced & (nearest < BIG)
            self.depth = xp.where(send, nearest + 1, self.depth)
            self.parent = xp.where(send, min_sender, self.parent)
        self.announced = self.announced | send
        bits = self.base_bits + int_bit_length(xp.maximum(self.depth, 0), xp)
        return send, (self.depth,), bits

    def outputs(self, trial):
        topology = self.batch.topologies[trial]
        nodes = topology.nodes
        halted = asnumpy(self.halted)[trial]
        depth = asnumpy(self.depth)[trial]
        parent = asnumpy(self.parent)[trial]
        out = {}
        for v, node in enumerate(nodes):
            if not halted[v]:
                out[node] = None
                continue
            p = int(parent[v])
            out[node] = (nodes[p] if p >= 0 else None, int(depth[v]))
        return out


register_batch_kernel("bfs", BFSBatchKernel)


def bfs_tree(
    graph: nx.Graph,
    root: Any,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> Tuple[Dict[Any, Any], Dict[Any, int], int]:
    """Run :class:`BFSTreeProgram`; return (parents, depths, rounds).

    ``parents`` maps each reached non-root node to its BFS parent;
    ``depths`` maps each reached node to its BFS depth.  *topology* and
    *profile* pass through to :class:`CongestNetwork` (the protocol is
    deterministic, so *seed* only pins the per-node RNG streams).
    """
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        BFSTreeProgram,
        max_rounds=network.n + 2,
        config={"root": root},
        strict_bandwidth=True,
        profile=profile,
    )
    parents: Dict[Any, Any] = {}
    depths: Dict[Any, int] = {}
    for node, out in result.outputs.items():
        if out is None:
            continue
        parent, depth = out
        depths[node] = depth
        if parent is not None:
            parents[node] = parent
    return parents, depths, result.rounds
