"""Stage II per-part verification as a genuine CONGEST protocol.

The emulated Stage II (:mod:`repro.testers.stage2`) computes corner
positions, samples non-tree edges and checks interlacements centrally,
charging rounds through the ledger.  This module implements the same
pipeline as real message passing, validating that the emulation's outputs
and cost formulas correspond to an executable protocol:

1. **BFS** (:mod:`repro.congest.programs.bfs`) builds ``T_B``.
2. **Euler offsets** -- every node knows its clockwise rotation (the
   output of the embedding subroutine) and its tree children; a
   convergecast accumulates per-subtree corner counts and a broadcast
   hands each node the entry offset of its tour segment, from which it
   computes the global Euler-tour position of each of its non-tree
   half-edges *locally*.  Two tree passes, one O(log n)-bit integer per
   message.
3. **Interval formation** -- one exchange round: each non-tree half-edge
   sends its position to the opposite endpoint.
4. **Sampling + verdict** -- each edge owner (the deeper endpoint,
   ties by id: the paper's assignment rule) samples its edges with
   probability ``min(1, s/m_nt)``; sampled intervals stream up the tree
   (one interval per edge per round -- pipelining), the root streams the
   full list down, and every owner checks its intervals against the
   sample for strict interlacement (Definition 7, corner form).

A node outputs ``("reject", witness)`` or ``("accept",)``; the protocol
is one-sided exactly like the emulated version.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..network import CongestNetwork
from ..node import Inbox, NodeContext, NodeProgram, Outbox
from .bfs import bfs_tree

MSG_COUNT = 10  # subtree (corner count, non-tree count) convergecast
MSG_OFFSET = 11  # (tour-entry offset, global non-tree total) broadcast
MSG_POS = 12  # position exchange across a non-tree edge
MSG_TOTAL = 14  # root's end-of-stream marker for the downward sample feed
MSG_SAMPLE_UP = 15  # sampled interval flowing up
MSG_SAMPLE_DOWN = 16  # sampled interval flowing down
MSG_SAMPLE_END = 17  # per-subtree end marker flowing up


def _interlace(a: int, b: int, c: int, d: int) -> bool:
    if a > c:
        a, b, c, d = c, d, a, b
    return a < c < b < d


class Stage2VerificationProgram(NodeProgram):
    """Distributed Stage II over one part.

    Config keys: ``parents`` (BFS tree), ``depths``, ``rotation``
    (``{node: clockwise neighbor list}``), ``root``, ``sample_target``,
    ``sample_seed``.  Node ids must be sortable (ints recommended).
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        config = ctx.config
        self._root = config["root"]
        self._parents: Dict[Any, Optional[Any]] = config["parents"]
        self._depths: Dict[Any, int] = config["depths"]
        self._rotation: List[Any] = list(config["rotation"][ctx.node])
        self._sample_target: int = config["sample_target"]
        me = ctx.node
        self._parent = self._parents.get(me)
        self._children = [
            w for w in ctx.neighbors if self._parents.get(w) == me
        ]
        self._tree_neighbors = set(self._children)
        if self._parent is not None:
            self._tree_neighbors.add(self._parent)
        self._non_tree = [w for w in ctx.neighbors if w not in self._tree_neighbors]
        # Gap structure: children in rotation order starting after the
        # parent edge; gap[i] lists the non-tree half-edges scanned after
        # descending into child i (gap[0] = before the first child).
        self._gaps, self._ordered_children = self._local_gaps()
        self._own_corner_count = sum(len(g) for g in self._gaps)
        # convergecast state
        self._child_counts: Dict[Any, int] = {}
        self._child_nt: Dict[Any, int] = {}
        self._sent_counts = False
        self._offset: Optional[int] = None
        self._positions: Dict[Any, int] = {}  # neighbor -> my half-edge position
        self._their_positions: Dict[Any, int] = {}
        self._sent_positions = False
        self._total_non_tree: Optional[int] = None
        self._sampled_mine: Optional[List[Tuple[int, int]]] = None
        self._up_queue: List[Tuple[int, int]] = []
        # END markers may arrive before this node's own sampling phase
        # begins, so they are tracked independently of phase state.
        self._ends_received: set = set()
        self._down_queue: List[tuple] = []
        self._sample_list: List[Tuple[int, int]] = []
        self._stream_done = False
        self._verdict: Optional[tuple] = None

    # -- local rotation analysis ------------------------------------------------

    def _local_gaps(self):
        rot = self._rotation
        if not rot:
            return [[]], []
        if self._parent is not None:
            start = rot.index(self._parent)
            ordered = rot[start + 1 :] + rot[:start]
        else:
            # the root's tour starts at its first tree edge; the gap
            # before it is scanned last, which the cyclic order below
            # already encodes if we start the scan AT that edge.
            first_tree = next(
                (i for i, w in enumerate(rot) if w in self._tree_pred(rot)),
                0,
            )
            ordered = rot[first_tree:] + rot[:first_tree]
            # drop the leading tree edge into position 0 of the scan
        gaps: List[List[Any]] = [[]]
        children_order: List[Any] = []
        for w in ordered:
            if w in self._tree_pred(rot) and w != self._parent:
                children_order.append(w)
                gaps.append([])
            elif w == self._parent:
                continue
            else:
                gaps[-1].append(w)
        return gaps, children_order

    def _tree_pred(self, rot):
        return self._tree_neighbors

    # -- subtree totals ------------------------------------------------------------

    def _subtree_count(self) -> int:
        return self._own_corner_count + sum(self._child_counts.values())

    def _subtree_nt(self) -> int:
        return self._owned_edge_count() + sum(self._child_nt.values())

    def _owned_edges(self) -> List[Any]:
        """Non-tree edges assigned to me: deeper endpoint, ties by id."""
        me = self.ctx.node
        mine = []
        for w in self._non_tree:
            dw, dm = self._depths[w], self._depths[me]
            if dm > dw or (dm == dw and repr(me) < repr(w)):
                mine.append(w)
        return mine

    def _owned_edge_count(self) -> int:
        return len(self._owned_edges())

    # -- offset distribution ---------------------------------------------------------

    def _assign_positions(self) -> Dict[Any, int]:
        """Compute child offsets and my half-edge positions from my offset."""
        child_offsets: Dict[Any, int] = {}
        cursor = self._offset
        # ordered children interleaved with gaps: gap[0], child[0]'s
        # subtree, gap[1], child[1]'s subtree, ...
        for x in self._gaps[0]:
            self._positions[x] = cursor
            cursor += 1
        for index, child in enumerate(self._ordered_children):
            child_offsets[child] = cursor
            cursor += self._child_counts[child]
            for x in self._gaps[index + 1]:
                self._positions[x] = cursor
                cursor += 1
        return child_offsets

    # -- main loop ---------------------------------------------------------

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Event-driven phase machine: counts, offsets, sampling, verdict."""
        out: Dict[Any, Any] = {}
        for sender, msg in inbox.items():
            tag = msg[0]
            if tag == MSG_COUNT:
                self._child_counts[sender] = msg[1]
                self._child_nt[sender] = msg[2]
            elif tag == MSG_OFFSET:
                self._offset = msg[1]
                self._total_non_tree = msg[2]
            elif tag == MSG_POS:
                self._their_positions[sender] = msg[1]
            elif tag == MSG_SAMPLE_UP:
                self._up_queue.append((msg[1], msg[2]))
            elif tag == MSG_SAMPLE_END:
                self._ends_received.add(sender)
            elif tag == MSG_SAMPLE_DOWN:
                self._sample_list.append((msg[1], msg[2]))
                self._down_queue.append(msg)
            elif tag == MSG_TOTAL:
                self._stream_done = True
                self._down_queue.append(msg)

        me = self.ctx.node

        # Phase A: corner-count convergecast (leaves fire immediately).
        if not self._sent_counts and len(self._child_counts) == len(self._children):
            self._sent_counts = True
            if self._parent is not None:
                out[self._parent] = (
                    MSG_COUNT,
                    self._subtree_count(),
                    self._subtree_nt(),
                )
            else:
                self._offset = 0
                self._total_non_tree = self._subtree_nt()

        # Phase B: offset broadcast + local position assignment.
        if self._offset is not None and not self._sent_positions:
            self._sent_positions = True
            child_offsets = self._assign_positions()
            for child, offset in child_offsets.items():
                out[child] = (MSG_OFFSET, offset, self._total_non_tree)
            for x, pos in self._positions.items():
                out[x] = (MSG_POS, pos)
            # Prepare sampling once positions are known (done next phase
            # when the opposite endpoints' positions arrive).

        # Phase C: sample own edges once both endpoints' positions known.
        if (
            self._sampled_mine is None
            and self._sent_positions
            and all(x in self._their_positions for x in self._non_tree)
        ):
            self._sampled_mine = []
            total = max(1, self._total_non_tree or 0)
            probability = min(1.0, self._sample_target / total)
            for x in self._owned_edges():
                a = self._positions[x]
                b = self._their_positions[x]
                if self.ctx.rng.random() < probability:
                    self._sampled_mine.append((min(a, b), max(a, b)))
            self._up_queue.extend(self._sampled_mine)

        # Phase D: stream sampled intervals up (one per round), then END.
        all_children_ended = set(self._children) <= self._ends_received
        if self._sampled_mine is not None and self._parent is not None:
            if self._up_queue:
                interval = self._up_queue.pop(0)
                out[self._parent] = (MSG_SAMPLE_UP, interval[0], interval[1])
            elif all_children_ended and not self._sent_counts_end():
                self._mark_end_sent()
                out[self._parent] = (MSG_SAMPLE_END,)

        # Root: once all children finished and queue drained, start the
        # downward stream.
        if (
            self._parent is None
            and self._sampled_mine is not None
            and all_children_ended
        ):
            if self._up_queue:
                interval = self._up_queue.pop(0)
                self._sample_list.append(interval)
                self._down_queue.append((MSG_SAMPLE_DOWN, interval[0], interval[1]))
            elif not self._stream_done:
                self._stream_done = True
                self._down_queue.append((MSG_TOTAL,))

        # Phase E: forward the downward stream (one message per round).
        if self._down_queue:
            msg = self._down_queue.pop(0)
            for child in self._children:
                out[child] = msg

        # Phase F: verdict once the stream has ended and queues drained.
        if (
            self._verdict is None
            and self._stream_done
            and not self._down_queue
            and self._sampled_mine is not None
        ):
            self._verdict = self._decide()
            self.halt(self._verdict)
        return out

    _end_sent = False

    def _sent_counts_end(self) -> bool:
        return self._end_sent

    def _mark_end_sent(self) -> None:
        self._end_sent = True

    def _decide(self) -> tuple:
        my_intervals = [
            (
                min(self._positions[x], self._their_positions[x]),
                max(self._positions[x], self._their_positions[x]),
            )
            for x in self._owned_edges()
        ]
        for a, b in my_intervals:
            for c, d in self._sample_list:
                if (a, b) != (c, d) and _interlace(a, b, c, d):
                    return ("reject", (a, b), (c, d))
        return ("accept",)


@dataclass
class SimulatedStage2Result:
    """Outcome of :func:`run_stage2_verification_simulated`."""

    accepted: bool
    rejecting_nodes: Tuple[Any, ...]
    positions: Dict[Tuple[Any, Any], int]
    sample_size: int
    bfs_rounds: int
    verification_rounds: int

    @property
    def rounds(self) -> int:
        """Total protocol rounds across both executions."""
        return self.bfs_rounds + self.verification_rounds


def run_stage2_verification_simulated(
    graph: nx.Graph,
    root: Any,
    rotation: Dict[Any, List[Any]],
    n_total: Optional[int] = None,
    epsilon: float = 0.1,
    sample_constant: float = 2.0,
    seed: Optional[int] = None,
    bandwidth_bits: Optional[int] = None,
    profile=None,
) -> SimulatedStage2Result:
    """Run the distributed Stage II pipeline on a connected part.

    *rotation* is the clockwise neighbor order per node (e.g. from
    :func:`repro.planarity.check_planarity`'s embedding ``to_dict()``, or
    the identity fallback for non-planar parts).
    """
    parents, depths, bfs_rounds = bfs_tree(
        graph, root, bandwidth_bits, seed=seed, profile=profile
    )
    parents_full: Dict[Any, Optional[Any]] = {root: None, **parents}
    n = graph.number_of_nodes()
    n_total = n_total if n_total is not None else n
    sample_target = max(
        1, int(math.ceil(sample_constant * math.log2(max(n_total, 2)) / epsilon))
    )
    # The BFS phase above already compiled this graph's topology; the
    # memo hands the verification network the same CompiledTopology.
    network = CongestNetwork(graph, bandwidth_bits=bandwidth_bits, seed=seed)
    m_nt = graph.number_of_edges() - (n - 1)
    limit = 8 * n + 20 * (sample_target + m_nt) + 50
    result = network.run(
        Stage2VerificationProgram,
        max_rounds=limit,
        config={
            "root": root,
            "parents": parents_full,
            "depths": depths,
            "rotation": rotation,
            "sample_target": sample_target,
            "sample_seed": seed,
        },
        strict_bandwidth=True,
        raise_on_limit=True,
        profile=profile,
    )
    rejecting = tuple(
        sorted(
            (v for v, out in result.outputs.items() if out and out[0] == "reject"),
            key=repr,
        )
    )
    # Collect the globally assigned positions for cross-validation.
    positions: Dict[Tuple[Any, Any], int] = {}
    for v, program in result.programs.items():
        for x, pos in program._positions.items():
            positions[(v, x)] = pos
    return SimulatedStage2Result(
        accepted=not rejecting,
        rejecting_nodes=rejecting,
        positions=positions,
        sample_size=sample_target,
        bfs_rounds=bfs_rounds,
        verification_rounds=result.rounds,
    )
