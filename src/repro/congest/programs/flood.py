"""Flooding: the simplest CONGEST protocol, used for distance estimation.

A designated root floods a token through the network; every node records
the round in which the token first reached it, which equals its distance
from the root.  The maximum over nodes is the root's eccentricity.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import networkx as nx

from ..batch import BIG, BatchKernel, register_batch_kernel
from ..message import bit_size
from ..network import CongestNetwork
from .tags import MSG_FLOOD
from ..node import Inbox, NodeContext, NodeProgram, Outbox
from ..xp import asnumpy, int_bit_length


class FloodProgram(NodeProgram):
    """Flood a token from ``config['root']``; output = hop distance.

    Nodes halt one round after forwarding, so the protocol terminates in
    ``eccentricity(root) + 2`` rounds.  Nodes unreachable from the root
    halt at the round limit with output ``None`` (the caller should size
    ``max_rounds`` accordingly).
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._distance: Optional[int] = None

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Forward the flood token once, then halt with the hop distance."""
        if self._distance is not None:
            # Token already forwarded last round; we are done.
            self.halt(self._distance)
            return self.silence()
        if round_index == 0:
            if self.ctx.node == self.ctx.config["root"]:
                self._distance = 0
                return self.broadcast((MSG_FLOOD, 0))
            return self.silence()
        arrivals = [msg for msg in inbox.values() if msg[0] == MSG_FLOOD]
        if arrivals:
            self._distance = min(dist for _tag, dist in arrivals) + 1
            return self.broadcast((MSG_FLOOD, self._distance))
        return self.silence()


class FloodBatchKernel(BatchKernel):
    """Array-state :class:`FloodProgram`: one distance lane, min-reduce.

    Mirrors the scalar step exactly: the root (dense index 0 -- each
    trial's minimum node id, as ``simulate_program`` jobs choose it)
    broadcasts in round 0; a node adopts ``min(arrived distances) + 1``
    the round the token reaches it, forwards once, and halts the round
    after.  Unreached nodes never halt, so disconnected trials run to
    their ``n + 2`` limit just like the scalar entry point.
    """

    lanes = 1
    strict = True

    def __init__(self, batch, params):  # noqa: D107
        super().__init__(batch, params)
        self.announced = batch.node_zeros(dtype=bool)
        self.dist = batch.node_full(-1)
        # Payload is (MSG_FLOOD, dist); bit_length(0) == 0, so sizing the
        # zero-distance payload yields the distance-free base cost.
        self.base_bits = bit_size((MSG_FLOOD, 0))

    def max_rounds(self):
        return self.batch.n_np + 2

    def step(self, round_index, live, plane):
        xp = self.xp
        halt_now = live[:, None] & self.announced & ~self.halted
        self.halted = self.halted | halt_now
        if round_index == 0:
            send = xp.zeros_like(self.announced)
            send[:, 0] = live
            self.dist = xp.where(send, 0, self.dist)
        else:
            arrived = xp.where(plane.cur_arrived, plane.cur_lanes[0], BIG)
            nearest = self.batch.reduce_min(arrived)
            send = live[:, None] & ~self.announced & (nearest < BIG)
            self.dist = xp.where(send, nearest + 1, self.dist)
        self.announced = self.announced | send
        bits = self.base_bits + int_bit_length(xp.maximum(self.dist, 0), xp)
        return send, (self.dist,), bits

    def outputs(self, trial):
        topology = self.batch.topologies[trial]
        halted = asnumpy(self.halted)[trial]
        dist = asnumpy(self.dist)[trial]
        return {
            node: int(dist[v]) if halted[v] else None
            for v, node in enumerate(topology.nodes)
        }


register_batch_kernel("flood", FloodBatchKernel)


def flood_eccentricity(
    graph: nx.Graph,
    root: Any,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> Tuple[int, dict]:
    """Run :class:`FloodProgram` and return (eccentricity, distances).

    Only meaningful for graphs where every node is reachable from *root*.
    """
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        FloodProgram,
        max_rounds=network.n + 2,
        config={"root": root},
        strict_bandwidth=True,
        profile=profile,
    )
    distances = {v: d for v, d in result.outputs.items() if d is not None}
    eccentricity = max(distances.values())
    return eccentricity, distances
