"""Flooding: the simplest CONGEST protocol, used for distance estimation.

A designated root floods a token through the network; every node records
the round in which the token first reached it, which equals its distance
from the root.  The maximum over nodes is the root's eccentricity.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import networkx as nx

from ..network import CongestNetwork
from .tags import MSG_FLOOD
from ..node import Inbox, NodeContext, NodeProgram, Outbox


class FloodProgram(NodeProgram):
    """Flood a token from ``config['root']``; output = hop distance.

    Nodes halt one round after forwarding, so the protocol terminates in
    ``eccentricity(root) + 2`` rounds.  Nodes unreachable from the root
    halt at the round limit with output ``None`` (the caller should size
    ``max_rounds`` accordingly).
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._distance: Optional[int] = None

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Forward the flood token once, then halt with the hop distance."""
        if self._distance is not None:
            # Token already forwarded last round; we are done.
            self.halt(self._distance)
            return self.silence()
        if round_index == 0:
            if self.ctx.node == self.ctx.config["root"]:
                self._distance = 0
                return self.broadcast((MSG_FLOOD, 0))
            return self.silence()
        arrivals = [msg for msg in inbox.values() if msg[0] == MSG_FLOOD]
        if arrivals:
            self._distance = min(dist for _tag, dist in arrivals) + 1
            return self.broadcast((MSG_FLOOD, self._distance))
        return self.silence()


def flood_eccentricity(
    graph: nx.Graph,
    root: Any,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> Tuple[int, dict]:
    """Run :class:`FloodProgram` and return (eccentricity, distances).

    Only meaningful for graphs where every node is reachable from *root*.
    """
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        FloodProgram,
        max_rounds=network.n + 2,
        config={"root": root},
        strict_bandwidth=True,
        profile=profile,
    )
    distances = {v: d for v, d in result.outputs.items() if d is not None}
    eccentricity = max(distances.values())
    return eccentricity, distances
