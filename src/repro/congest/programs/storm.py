"""Broadcast storm: a synthetic workload that saturates the delivery loop.

Every node broadcasts a CONGEST-sized payload (a tag, its own id, and a
round counter folded into a small window so payloads repeat) for a fixed
number of rounds, then halts.  On a dense graph this makes the
simulator's delivery loop -- validation, bit accounting, inbox writes --
the overwhelming cost, which is exactly what the E15 throughput
benchmark needs to compare instrumentation profiles: the program's own
``step`` work is negligible, so wall-clock differences are attributable
to the delivery path.

The payload cycles through a small window of distinct values per node
(rather than being constant) so the fast profile's bit-size memo is
exercised realistically: hits dominate, but new entries keep appearing
early in the run.
"""

from __future__ import annotations

from typing import Optional

from ..batch import BatchKernel, register_batch_kernel
from ..message import bit_size
from .tags import MSG_STORM
from ..node import Inbox, NodeContext, NodeProgram, Outbox
from ..xp import asnumpy

PAYLOAD_WINDOW = 4
"""Distinct payloads each node cycles through (memo realism knob)."""


class BroadcastStormProgram(NodeProgram):
    """Broadcast every round for ``config['storm_rounds']`` rounds.

    Output per node: the number of messages it received in total (a
    deterministic digest of the delivery schedule, so differential
    tests can compare profiles on it).
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._rounds = int(ctx.config["storm_rounds"])
        self._received = 0

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        self._received += len(inbox)
        if round_index >= self._rounds:
            self.halt(self._received)
            return self.silence()
        return self.broadcast(
            (MSG_STORM, self.ctx.node, round_index % PAYLOAD_WINDOW)
        )


class StormBatchKernel(BatchKernel):
    """Array-state :class:`BroadcastStormProgram`: receive-count only.

    No payload lanes -- the only observable state is how many messages
    arrived, which the boolean plane already carries.  Payload sizes
    depend on the sender's id, so the per-node base cost vector is
    computed once via the scalar :func:`bit_size` (memoized per
    topology object: the pinned-graph benchmark batches B copies of one
    topology) and the round counter's contribution is a scalar per
    round.  Non-strict, matching the scalar entry point.
    """

    lanes = 0
    strict = False

    def __init__(self, batch, params):  # noqa: D107
        super().__init__(batch, params)
        import numpy as np

        xp = self.xp
        self.storm_rounds = int(params.get("storm_rounds", 8))
        self.received = batch.node_zeros()
        base = np.zeros((batch.B, batch.n_pad + 1), dtype=np.int64)
        memo = {}
        for b, topology in enumerate(batch.topologies):
            row = memo.get(id(topology))
            if row is None:
                row = memo[id(topology)] = np.array(
                    [
                        bit_size((MSG_STORM, node, 0))
                        for node in topology.nodes
                    ],
                    dtype=np.int64,
                )
            base[b, : topology.n] = row
        self.base_bits = xp.asarray(base)

    def max_rounds(self):
        import numpy as np

        return np.full(self.batch.B, self.storm_rounds + 2, dtype=np.int64)

    def step(self, round_index, live, plane):
        xp = self.xp
        listening = live[:, None] & ~self.halted
        counts = self.batch.reduce_sum(plane.cur_arrived.astype(xp.int64))
        self.received = self.received + xp.where(listening, counts, 0)
        halt_now = listening & (round_index >= self.storm_rounds)
        self.halted = self.halted | halt_now
        send = listening & ~halt_now
        window = (round_index % PAYLOAD_WINDOW).bit_length()
        return send, (), self.base_bits + window

    def outputs(self, trial):
        topology = self.batch.topologies[trial]
        halted = asnumpy(self.halted)[trial]
        received = asnumpy(self.received)[trial]
        return {
            node: int(received[v]) if halted[v] else None
            for v, node in enumerate(topology.nodes)
        }


register_batch_kernel("storm", StormBatchKernel)
