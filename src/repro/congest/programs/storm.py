"""Broadcast storm: a synthetic workload that saturates the delivery loop.

Every node broadcasts a CONGEST-sized payload (a tag, its own id, and a
round counter folded into a small window so payloads repeat) for a fixed
number of rounds, then halts.  On a dense graph this makes the
simulator's delivery loop -- validation, bit accounting, inbox writes --
the overwhelming cost, which is exactly what the E15 throughput
benchmark needs to compare instrumentation profiles: the program's own
``step`` work is negligible, so wall-clock differences are attributable
to the delivery path.

The payload cycles through a small window of distinct values per node
(rather than being constant) so the fast profile's bit-size memo is
exercised realistically: hits dominate, but new entries keep appearing
early in the run.
"""

from __future__ import annotations

from typing import Optional

from .tags import MSG_STORM
from ..node import Inbox, NodeContext, NodeProgram, Outbox

PAYLOAD_WINDOW = 4
"""Distinct payloads each node cycles through (memo realism knob)."""


class BroadcastStormProgram(NodeProgram):
    """Broadcast every round for ``config['storm_rounds']`` rounds.

    Output per node: the number of messages it received in total (a
    deterministic digest of the delivery schedule, so differential
    tests can compare profiles on it).
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._rounds = int(ctx.config["storm_rounds"])
        self._received = 0

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        self._received += len(inbox)
        if round_index >= self._rounds:
            self.halt(self._received)
            return self.silence()
        return self.broadcast(
            (MSG_STORM, self.ctx.node, round_index % PAYLOAD_WINDOW)
        )
