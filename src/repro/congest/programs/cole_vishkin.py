"""Cole-Vishkin 3-coloring of rooted (pseudo)forests as a CONGEST protocol.

Used in Sub-step 2a of the merging step (paper Section 2.1.2).  Each node
knows its parent in the (pseudo)forest; colors start as node identifiers,
shrink to {0..5} via iterated CV bit tricks in ``O(log* n)`` rounds, and
are then reduced to {0,1,2} by three shift-down + eliminate phases.

The protocol is correct on directed pseudoforests (every node has at most
one out-edge / parent), which covers both Stage I's forests and the
randomized variant's pseudoforests (paper Section 4, Claim 15).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..batch import BatchKernel, register_batch_kernel
from ..network import CongestNetwork
from .tags import MSG_CV
from ..node import Inbox, NodeContext, NodeProgram, Outbox
from ..xp import asnumpy, int_bit_length


def cv_step_value(own: int, parent: int) -> int:
    """One Cole-Vishkin step: encode lowest differing bit position + value."""
    if own == parent:
        raise ValueError("CV step requires own color != parent color")
    diff = own ^ parent
    i = (diff & -diff).bit_length() - 1  # index of lowest set bit
    return 2 * i + ((own >> i) & 1)


def cv_schedule(max_initial_color: int) -> List[str]:
    """Deterministic phase schedule shared by all nodes.

    Returns a list of phases; ``'cv'`` entries reduce the palette until all
    colors are < 6, then shift/eliminate pairs reduce 6 -> 3.
    """
    phases: List[str] = []
    m = max(max_initial_color, 1)
    while m > 5:
        # After one CV step values are at most 2*bit_length(m) - 1.
        m = 2 * m.bit_length() - 1
        phases.append("cv")
    phases.append("cv")  # safety margin: one extra step is harmless
    for c in (5, 4, 3):
        phases.append("shift")
        phases.append(f"elim{c}")
    return phases


class ColeVishkinProgram(NodeProgram):
    """3-color a pseudoforest given via ``config['parents']``.

    ``config['parents']`` maps node id to parent id (or None for roots);
    every node reads only its own entry, its neighbors learn about
    child/parent relations through the round-0 announcement, preserving
    the local character of the protocol.  Node ids must be non-negative
    integers (they seed the initial coloring).  Output: final color.
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        if not isinstance(ctx.node, int) or ctx.node < 0:
            raise ValueError("ColeVishkinProgram requires non-negative int node ids")
        self._parent: Optional[int] = ctx.config["parents"].get(ctx.node)
        self._phases: List[str] = list(ctx.config["schedule"])
        self._color: int = ctx.node
        self._children: set = set()
        self._neighbor_colors: Dict[Any, int] = {}

    def _payload(self) -> tuple:
        return (MSG_CV, self._color, self._parent if self._parent is not None else -1)

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Apply the scheduled CV/shift/eliminate phase; broadcast color."""
        for sender, msg in inbox.items():
            if msg[0] == MSG_CV:
                self._neighbor_colors[sender] = msg[1]
                if round_index == 1 and msg[2] == self.ctx.node:
                    self._children.add(sender)
        if round_index == 0:
            return self.broadcast(self._payload())
        phase_index = round_index - 1
        if phase_index >= len(self._phases):
            self.halt(self._color)
            return self.silence()
        self._apply_phase(self._phases[phase_index])
        return self.broadcast(self._payload())

    def _apply_phase(self, phase: str) -> None:
        if phase == "cv":
            if self._parent is None:
                # Roots pretend the parent differs in bit 0.
                self._color = cv_step_value(self._color, self._color ^ 1)
            else:
                self._color = cv_step_value(
                    self._color, self._neighbor_colors[self._parent]
                )
        elif phase == "shift":
            if self._parent is None:
                old = self._color
                self._color = 0 if old != 0 else 1
            else:
                self._color = self._neighbor_colors[self._parent]
        elif phase.startswith("elim"):
            target = int(phase[4:])
            if self._color == target:
                forbidden = set()
                if self._parent is not None:
                    forbidden.add(self._neighbor_colors[self._parent])
                for child in self._children:
                    forbidden.add(self._neighbor_colors[child])
                self._color = min(c for c in (0, 1, 2) if c not in forbidden)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown CV phase {phase!r}")


def min_neighbor_parents(graph: nx.Graph) -> Dict[int, Optional[int]]:
    """The canonical pseudoforest for standalone CV runs on a graph.

    Each node's parent is its minimum smaller-id neighbor (roots where
    none exists) -- deterministic, local, acyclic (parents strictly
    decrease), and every parent edge is a graph edge.  ``simulate
    --programs cv`` jobs and the batched kernel derive the same forest
    independently, so scalar and batched runs color identical inputs.
    """
    return {
        v: min((w for w in graph.adj[v] if w < v), default=None)
        for v in graph.nodes()
    }


class ColeVishkinBatchKernel(BatchKernel):
    """Array-state :class:`ColeVishkinProgram` over the canonical forest.

    Every node broadcasts its color each round and updates
    synchronously, so the parent color a node reads from its inbox at
    round ``r`` is exactly the lockstep ``colors`` tensor before phase
    ``r - 1`` is applied -- the kernel therefore gathers parent colors
    (and scatters child colors into the eliminate phases' forbidden
    sets) from state instead of decoding lanes, while sending with the
    scalar's mask and payload sizes so the accounting stays
    bit-identical.  Schedules are ragged (each trial's
    :func:`cv_schedule` depends on its maximum id); rounds dispatch the
    <= 5 distinct phase labels as masked row groups.  The phase
    arithmetic mirrors ``repro.partition.dense.cole_vishkin_dense``.
    """

    lanes = 0  # pure state kernel: see class docstring
    strict = True

    def __init__(self, batch, params):  # noqa: D107
        super().__init__(batch, params)
        import numpy as np

        xp = self.xp
        B, N1 = batch.B, batch.n_pad + 1
        colors = np.zeros((B, N1), dtype=np.int64)
        parent_col = np.tile(np.arange(N1, dtype=np.int64), (B, 1))
        parent_bits = np.zeros((B, N1), dtype=np.int64)
        is_root = np.zeros((B, N1), dtype=bool)
        self.sched: List[List[str]] = []
        for b, topology in enumerate(batch.topologies):
            n = topology.n
            ids = np.asarray(topology.nodes, dtype=np.int64)
            arrays = topology.batch_arrays()
            smaller = arrays.indices < arrays.row_owner
            pmin = np.full(n, n, dtype=np.int64)
            np.minimum.at(pmin, arrays.row_owner[smaller], arrays.indices[smaller])
            root = pmin >= n
            colors[b, :n] = ids
            parent_col[b, :n] = np.where(root, np.arange(n), pmin)
            # bit_size(parent id) for the static payload slot: ids are
            # non-negative, roots announce -1 (two bits).
            parent_ids = np.where(root, 0, ids[np.minimum(pmin, n - 1)])
            parent_bits[b, :n] = np.where(
                root,
                2,
                np.frexp(parent_ids.astype(np.float64))[1] + 1,
            )
            is_root[b, :n] = root
            self.sched.append(cv_schedule(int(ids[-1]) if n else 1))
        self.sched_len_np = np.array(
            [len(s) for s in self.sched], dtype=np.int64
        )
        self.sched_len = xp.asarray(self.sched_len_np)
        self.colors = xp.asarray(colors)
        self.parent_col = xp.asarray(parent_col)
        self.parent_bits = xp.asarray(parent_bits)
        self.is_root = xp.asarray(is_root)
        self.nonroot = batch.node_mask & ~self.is_root
        # bit_size((MSG_CV, color, parent)): tuple frame 2 + tag 4+2 +
        # two framed slots (color varies per round, parent is static).
        self.const_bits = 12

    def max_rounds(self):
        return self.sched_len_np + 3

    def _payload_bits(self):
        xp = self.xp
        color_bits = int_bit_length(xp.maximum(self.colors, 0), xp) + 1
        return self.const_bits + color_bits + self.parent_bits

    def _parent_colors(self):
        xp = self.xp
        return xp.take_along_axis(self.colors, self.parent_col, axis=1)

    def _apply_phase(self, label: str, rows) -> None:
        import numpy as np

        xp = self.xp
        part = rows[:, None] & self.batch.node_mask
        colors = self.colors
        pc = self._parent_colors()
        if label == "cv":
            effective = xp.where(self.is_root, colors ^ 1, pc)
            diff = xp.where(part, colors ^ effective, 1)
            low = diff & -diff
            index = xp.log2(low.astype(xp.float64)).astype(xp.int64)
            stepped = 2 * index + ((colors >> index) & 1)
            self.colors = xp.where(part, stepped, colors)
        elif label == "shift":
            root_next = xp.where(colors != 0, 0, 1)
            shifted = xp.where(self.is_root, root_next, pc)
            self.colors = xp.where(part, shifted, colors)
        else:  # elim{target}
            target = int(label[4:])
            B, N1 = self.batch.B, self.batch.n_pad + 1
            one = xp.int64(1)
            sel = part & self.nonroot
            flat = xp.zeros(B * N1, dtype=xp.int64)
            col_index = (
                xp.arange(B, dtype=xp.int64)[:, None] * N1 + self.parent_col
            )
            if hasattr(xp.bitwise_or, "at"):
                xp.bitwise_or.at(
                    flat, col_index[sel], one << xp.where(sel, colors, 0)[sel]
                )
                forbidden = flat.reshape(B, N1)
            else:  # pragma: no cover - cupy fallback mirrors reduce_* ops
                flat_np = np.zeros(B * N1, dtype=np.int64)
                np.bitwise_or.at(
                    flat_np,
                    asnumpy(col_index[sel]),
                    asnumpy(one << xp.where(sel, colors, 0)[sel]),
                )
                forbidden = xp.asarray(flat_np).reshape(B, N1)
            forbidden = forbidden | xp.where(
                sel, one << xp.where(sel, pc, 0), 0
            )
            choice = xp.where(
                forbidden & 1 == 0, 0, xp.where(forbidden & 2 == 0, 1, 2)
            )
            self.colors = xp.where(part & (colors == target), choice, colors)

    def step(self, round_index, live, plane):
        import numpy as np

        xp = self.xp
        batch = self.batch
        if round_index == 0:
            send = live[:, None] & batch.node_mask
            return send, (), self._payload_bits()
        finishing = live & (round_index > self.sched_len)
        if bool(finishing.any()):
            halt_now = finishing[:, None] & batch.node_mask & ~self.halted
            self.halted = self.halted | halt_now
        acting = live & (round_index <= self.sched_len)
        acting_np = asnumpy(acting)
        groups: Dict[str, List[int]] = {}
        for b in np.nonzero(acting_np)[0]:
            groups.setdefault(self.sched[b][round_index - 1], []).append(b)
        for label, members in sorted(groups.items()):
            rows = np.zeros(batch.B, dtype=bool)
            rows[members] = True
            self._apply_phase(label, xp.asarray(rows))
        send = acting[:, None] & batch.node_mask
        return send, (), self._payload_bits()

    def outputs(self, trial):
        topology = self.batch.topologies[trial]
        halted = asnumpy(self.halted)[trial]
        colors = asnumpy(self.colors)[trial]
        return {
            node: int(colors[v]) if halted[v] else None
            for v, node in enumerate(topology.nodes)
        }


register_batch_kernel("cv", ColeVishkinBatchKernel)


def cole_vishkin_coloring(
    graph: nx.Graph,
    parents: Dict[int, Optional[int]],
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> Tuple[Dict[int, int], int]:
    """Run the CV protocol; return (colors, rounds).

    *graph* must contain every (child, parent) pair of *parents* as an
    edge; extra edges are permitted (they carry status messages that the
    protocol simply ignores).
    """
    for child, parent in parents.items():
        if parent is not None and not graph.has_edge(child, parent):
            raise ValueError(f"parent edge ({child}, {parent}) missing from graph")
    max_id = max((v for v in graph.nodes()), default=1)
    schedule = cv_schedule(max_id)
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        ColeVishkinProgram,
        max_rounds=len(schedule) + 3,
        config={"parents": parents, "schedule": schedule},
        strict_bandwidth=True,
        profile=profile,
    )
    return dict(result.outputs), result.rounds
