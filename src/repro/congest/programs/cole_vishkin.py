"""Cole-Vishkin 3-coloring of rooted (pseudo)forests as a CONGEST protocol.

Used in Sub-step 2a of the merging step (paper Section 2.1.2).  Each node
knows its parent in the (pseudo)forest; colors start as node identifiers,
shrink to {0..5} via iterated CV bit tricks in ``O(log* n)`` rounds, and
are then reduced to {0,1,2} by three shift-down + eliminate phases.

The protocol is correct on directed pseudoforests (every node has at most
one out-edge / parent), which covers both Stage I's forests and the
randomized variant's pseudoforests (paper Section 4, Claim 15).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..network import CongestNetwork
from .tags import MSG_CV
from ..node import Inbox, NodeContext, NodeProgram, Outbox


def cv_step_value(own: int, parent: int) -> int:
    """One Cole-Vishkin step: encode lowest differing bit position + value."""
    if own == parent:
        raise ValueError("CV step requires own color != parent color")
    diff = own ^ parent
    i = (diff & -diff).bit_length() - 1  # index of lowest set bit
    return 2 * i + ((own >> i) & 1)


def cv_schedule(max_initial_color: int) -> List[str]:
    """Deterministic phase schedule shared by all nodes.

    Returns a list of phases; ``'cv'`` entries reduce the palette until all
    colors are < 6, then shift/eliminate pairs reduce 6 -> 3.
    """
    phases: List[str] = []
    m = max(max_initial_color, 1)
    while m > 5:
        # After one CV step values are at most 2*bit_length(m) - 1.
        m = 2 * m.bit_length() - 1
        phases.append("cv")
    phases.append("cv")  # safety margin: one extra step is harmless
    for c in (5, 4, 3):
        phases.append("shift")
        phases.append(f"elim{c}")
    return phases


class ColeVishkinProgram(NodeProgram):
    """3-color a pseudoforest given via ``config['parents']``.

    ``config['parents']`` maps node id to parent id (or None for roots);
    every node reads only its own entry, its neighbors learn about
    child/parent relations through the round-0 announcement, preserving
    the local character of the protocol.  Node ids must be non-negative
    integers (they seed the initial coloring).  Output: final color.
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        if not isinstance(ctx.node, int) or ctx.node < 0:
            raise ValueError("ColeVishkinProgram requires non-negative int node ids")
        self._parent: Optional[int] = ctx.config["parents"].get(ctx.node)
        self._phases: List[str] = list(ctx.config["schedule"])
        self._color: int = ctx.node
        self._children: set = set()
        self._neighbor_colors: Dict[Any, int] = {}

    def _payload(self) -> tuple:
        return (MSG_CV, self._color, self._parent if self._parent is not None else -1)

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """Apply the scheduled CV/shift/eliminate phase; broadcast color."""
        for sender, msg in inbox.items():
            if msg[0] == MSG_CV:
                self._neighbor_colors[sender] = msg[1]
                if round_index == 1 and msg[2] == self.ctx.node:
                    self._children.add(sender)
        if round_index == 0:
            return self.broadcast(self._payload())
        phase_index = round_index - 1
        if phase_index >= len(self._phases):
            self.halt(self._color)
            return self.silence()
        self._apply_phase(self._phases[phase_index])
        return self.broadcast(self._payload())

    def _apply_phase(self, phase: str) -> None:
        if phase == "cv":
            if self._parent is None:
                # Roots pretend the parent differs in bit 0.
                self._color = cv_step_value(self._color, self._color ^ 1)
            else:
                self._color = cv_step_value(
                    self._color, self._neighbor_colors[self._parent]
                )
        elif phase == "shift":
            if self._parent is None:
                old = self._color
                self._color = 0 if old != 0 else 1
            else:
                self._color = self._neighbor_colors[self._parent]
        elif phase.startswith("elim"):
            target = int(phase[4:])
            if self._color == target:
                forbidden = set()
                if self._parent is not None:
                    forbidden.add(self._neighbor_colors[self._parent])
                for child in self._children:
                    forbidden.add(self._neighbor_colors[child])
                self._color = min(c for c in (0, 1, 2) if c not in forbidden)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown CV phase {phase!r}")


def cole_vishkin_coloring(
    graph: nx.Graph,
    parents: Dict[int, Optional[int]],
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> Tuple[Dict[int, int], int]:
    """Run the CV protocol; return (colors, rounds).

    *graph* must contain every (child, parent) pair of *parents* as an
    edge; extra edges are permitted (they carry status messages that the
    protocol simply ignores).
    """
    for child, parent in parents.items():
        if parent is not None and not graph.has_edge(child, parent):
            raise ValueError(f"parent edge ({child}, {parent}) missing from graph")
    max_id = max((v for v in graph.nodes()), default=1)
    schedule = cv_schedule(max_id)
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        ColeVishkinProgram,
        max_rounds=len(schedule) + 3,
        config={"parents": parents, "schedule": schedule},
        strict_bandwidth=True,
        profile=profile,
    )
    return dict(result.outputs), result.rounds
