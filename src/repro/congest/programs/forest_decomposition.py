"""Barenboim-Elkin forest decomposition as a real CONGEST protocol.

Paper Section 2.1.1: all nodes start *active*; in each of ``s = Θ(log n)``
rounds, an active node with at most ``3*alpha`` active neighbors announces
that it becomes inactive in the next round.  If the graph has arboricity
at most ``alpha``, a constant fraction of active nodes deactivates per
round (the active subgraph has average degree at most ``2*alpha``), so all
nodes are inactive after ``s`` rounds.  A node still active after ``s``
rounds is *evidence* that the arboricity exceeds ``alpha``.

On success the deactivation schedule defines an acyclic orientation with
out-degree at most ``3*alpha``: orient ``{u, v}`` from the earlier
deactivated endpoint to the later one, breaking ties toward the larger id.
Grouping each node's out-edges yields at most ``3*alpha`` forests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import networkx as nx

from ..batch import BatchKernel, register_batch_kernel
from ..message import bit_size
from ..network import CongestNetwork
from .tags import MSG_ACTIVE, MSG_INACTIVE
from ..node import Inbox, NodeContext, NodeProgram, Outbox
from ..xp import asnumpy


def barenboim_elkin_round_budget(n: int) -> int:
    """Number of deactivation super-rounds that guarantees success.

    With arboricity <= alpha, at least a third of the active nodes
    deactivate per round (degree threshold 3*alpha versus average active
    degree <= 2*alpha), so ``log_{3/2}(n) + 1`` rounds always suffice.
    """
    if n <= 1:
        return 1
    return int(math.ceil(math.log(n) / math.log(1.5))) + 1


class BarenboimElkinProgram(NodeProgram):
    """Forest decomposition via deactivation (config: ``alpha``, ``budget``).

    Output per node: a dict with keys

    * ``active``: True when the node never deactivated (rejection evidence),
    * ``inactive_round``: the super-round at which it deactivated (or None),
    * ``out_neighbors``: the oriented out-edges (empty if still active).
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._active = True
        self._inactive_round: Optional[int] = None
        self._neighbor_inactive_round: Dict[Any, Optional[int]] = {
            v: None for v in ctx.neighbors
        }
        self._alpha = int(ctx.config["alpha"])
        self._budget = int(ctx.config["budget"])

    def _record(self, inbox: Inbox) -> None:
        for sender, msg in inbox.items():
            tag = msg[0]
            if tag == MSG_INACTIVE:
                self._neighbor_inactive_round[sender] = msg[1]

    def _active_neighbor_count(self) -> int:
        return sum(
            1 for r in self._neighbor_inactive_round.values() if r is None
        )

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """One deactivation super-round: count active neighbors, decide."""
        self._record(inbox)
        if round_index == 0:
            # Initial status exchange; everyone starts active.
            return self.broadcast((MSG_ACTIVE,))
        super_round = round_index  # super-round ell = round index (1-based)
        if super_round > self._budget:
            self._finish()
            return self.silence()
        if self._active:
            if self._active_neighbor_count() <= 3 * self._alpha:
                self._active = False
                self._inactive_round = super_round
                return self.broadcast((MSG_INACTIVE, super_round))
            return self.broadcast((MSG_ACTIVE,))
        # Inactive nodes stay silent but keep listening so they learn when
        # each remaining neighbor deactivates (needed for orientation).
        return self.silence()

    def _finish(self) -> None:
        if self._active:
            self.halt({"active": True, "inactive_round": None, "out_neighbors": ()})
            return
        mine = self._inactive_round
        out = []
        for v, theirs in self._neighbor_inactive_round.items():
            if theirs is None:  # neighbor never deactivated: deactivates "later"
                out.append(v)
            elif theirs > mine or (theirs == mine and v > self.ctx.node):
                out.append(v)
        self.halt(
            {
                "active": False,
                "inactive_round": mine,
                "out_neighbors": tuple(sorted(out)),
            }
        )


class ForestBatchKernel(BatchKernel):
    """Array-state :class:`BarenboimElkinProgram`: tag + round lanes.

    Per-slot ``neighbor_inactive_round`` state (``-1`` for "still
    active") is refreshed from arrivals at the top of every step --
    exactly where the scalar's ``_record`` runs -- so the final
    orientation sees deactivations announced in the last super-round.
    Each trial uses its own ``barenboim_elkin_round_budget(n)``, like
    ``simulate_program`` jobs do; all nodes finish (halt) together in
    round ``budget + 1``.
    """

    lanes = 2  # lane 0: message tag, lane 1: deactivation super-round
    strict = True

    def __init__(self, batch, params):  # noqa: D107
        super().__init__(batch, params)
        import numpy as np

        xp = self.xp
        self.alpha = int(params.get("alpha", 3))
        self.budget_np = np.array(
            [barenboim_elkin_round_budget(int(n)) for n in batch.n_np],
            dtype=np.int64,
        )
        self.budget = xp.asarray(self.budget_np)
        self.active = batch.node_mask.copy()
        self.inactive_round = batch.node_full(-1)
        # Per-slot view of each node's neighbor deactivation rounds.
        self.neighbor_inactive = xp.full(
            (batch.B, batch.slots_alloc), -1, dtype=xp.int64
        )
        self.active_bits = bit_size((MSG_ACTIVE,))
        self.inactive_base = bit_size((MSG_INACTIVE, 0))

    def max_rounds(self):
        return self.budget_np + 3

    def step(self, round_index, live, plane):
        xp = self.xp
        batch = self.batch
        # Record phase (scalar `_record`): fold last round's INACTIVE
        # announcements into the per-slot neighbor table first.
        announced = plane.cur_arrived & (plane.cur_lanes[0] == MSG_INACTIVE)
        self.neighbor_inactive = xp.where(
            announced, plane.cur_lanes[1], self.neighbor_inactive
        )
        if round_index == 0:
            # Initial status exchange; everyone starts active.
            send = live[:, None] & batch.node_mask
            return (
                send,
                (batch.node_full(MSG_ACTIVE), batch.node_zeros()),
                batch.node_full(self.active_bits),
            )
        finishing = live & (round_index > self.budget)
        if bool(finishing.any()):
            halt_now = finishing[:, None] & batch.node_mask & ~self.halted
            self.halted = self.halted | halt_now
        deciding = live & (round_index <= self.budget)
        inactive_count = batch.reduce_sum(
            (self.neighbor_inactive != -1).astype(xp.int64)
        )
        active_neighbors = batch.degrees - inactive_count
        eligible = deciding[:, None] & self.active & batch.node_mask
        deact = eligible & (active_neighbors <= 3 * self.alpha)
        stay = eligible & ~deact
        self.active = self.active & ~deact
        self.inactive_round = xp.where(deact, round_index, self.inactive_round)
        send = deact | stay
        tag = xp.where(deact, MSG_INACTIVE, MSG_ACTIVE)
        ell = xp.where(deact, round_index, 0)
        bits = xp.where(
            deact,
            self.inactive_base + int(round_index).bit_length(),
            self.active_bits,
        )
        return send, (tag, ell), bits

    def outputs(self, trial):
        topology = self.batch.topologies[trial]
        nodes = topology.nodes
        arrays = topology.batch_arrays()
        halted = asnumpy(self.halted)[trial]
        active = asnumpy(self.active)[trial]
        inactive_round = asnumpy(self.inactive_round)[trial]
        neighbor_inactive = asnumpy(self.neighbor_inactive)[trial]
        out = {}
        for v, node in enumerate(nodes):
            if not halted[v]:
                out[node] = None
                continue
            if active[v]:
                out[node] = {
                    "active": True,
                    "inactive_round": None,
                    "out_neighbors": (),
                }
                continue
            mine = int(inactive_round[v])
            oriented = []
            for slot in range(arrays.indptr[v], arrays.indptr[v + 1]):
                w = int(arrays.indices[slot])
                theirs = int(neighbor_inactive[slot])
                if theirs == -1 or theirs > mine or (theirs == mine and w > v):
                    oriented.append(nodes[w])
            out[node] = {
                "active": False,
                "inactive_round": mine,
                "out_neighbors": tuple(sorted(oriented)),
            }
        return out


register_batch_kernel("forest", ForestBatchKernel)


@dataclass
class SimulatedForestDecomposition:
    """Result of :func:`run_forest_decomposition_simulated`."""

    success: bool
    inactive_round: Dict[Any, Optional[int]]
    out_neighbors: Dict[Any, Tuple[Any, ...]]
    rejecting_nodes: Tuple[Any, ...]
    rounds: int

    def orientation_edges(self):
        """Yield oriented edges (u, v) with u -> v."""
        for u, outs in self.out_neighbors.items():
            for v in outs:
                yield (u, v)


def run_forest_decomposition_simulated(
    graph: nx.Graph,
    alpha: int = 3,
    budget: Optional[int] = None,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> SimulatedForestDecomposition:
    """Run :class:`BarenboimElkinProgram` on *graph*."""
    n = graph.number_of_nodes()
    budget = budget if budget is not None else barenboim_elkin_round_budget(n)
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        BarenboimElkinProgram,
        max_rounds=budget + 3,
        config={"alpha": alpha, "budget": budget},
        strict_bandwidth=True,
        profile=profile,
    )
    inactive_round = {}
    out_neighbors = {}
    rejecting = []
    for node, out in result.outputs.items():
        inactive_round[node] = out["inactive_round"]
        out_neighbors[node] = out["out_neighbors"]
        if out["active"]:
            rejecting.append(node)
    return SimulatedForestDecomposition(
        success=not rejecting,
        inactive_round=inactive_round,
        out_neighbors=out_neighbors,
        rejecting_nodes=tuple(sorted(rejecting)),
        rounds=result.rounds,
    )
