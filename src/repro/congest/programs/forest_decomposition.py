"""Barenboim-Elkin forest decomposition as a real CONGEST protocol.

Paper Section 2.1.1: all nodes start *active*; in each of ``s = Θ(log n)``
rounds, an active node with at most ``3*alpha`` active neighbors announces
that it becomes inactive in the next round.  If the graph has arboricity
at most ``alpha``, a constant fraction of active nodes deactivates per
round (the active subgraph has average degree at most ``2*alpha``), so all
nodes are inactive after ``s`` rounds.  A node still active after ``s``
rounds is *evidence* that the arboricity exceeds ``alpha``.

On success the deactivation schedule defines an acyclic orientation with
out-degree at most ``3*alpha``: orient ``{u, v}`` from the earlier
deactivated endpoint to the later one, breaking ties toward the larger id.
Grouping each node's out-edges yields at most ``3*alpha`` forests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import networkx as nx

from ..network import CongestNetwork
from .tags import MSG_ACTIVE, MSG_INACTIVE
from ..node import Inbox, NodeContext, NodeProgram, Outbox


def barenboim_elkin_round_budget(n: int) -> int:
    """Number of deactivation super-rounds that guarantees success.

    With arboricity <= alpha, at least a third of the active nodes
    deactivate per round (degree threshold 3*alpha versus average active
    degree <= 2*alpha), so ``log_{3/2}(n) + 1`` rounds always suffice.
    """
    if n <= 1:
        return 1
    return int(math.ceil(math.log(n) / math.log(1.5))) + 1


class BarenboimElkinProgram(NodeProgram):
    """Forest decomposition via deactivation (config: ``alpha``, ``budget``).

    Output per node: a dict with keys

    * ``active``: True when the node never deactivated (rejection evidence),
    * ``inactive_round``: the super-round at which it deactivated (or None),
    * ``out_neighbors``: the oriented out-edges (empty if still active).
    """

    def __init__(self, ctx: NodeContext):  # noqa: D107
        super().__init__(ctx)
        self._active = True
        self._inactive_round: Optional[int] = None
        self._neighbor_inactive_round: Dict[Any, Optional[int]] = {
            v: None for v in ctx.neighbors
        }
        self._alpha = int(ctx.config["alpha"])
        self._budget = int(ctx.config["budget"])

    def _record(self, inbox: Inbox) -> None:
        for sender, msg in inbox.items():
            tag = msg[0]
            if tag == MSG_INACTIVE:
                self._neighbor_inactive_round[sender] = msg[1]

    def _active_neighbor_count(self) -> int:
        return sum(
            1 for r in self._neighbor_inactive_round.values() if r is None
        )

    def step(self, round_index: int, inbox: Inbox) -> Optional[Outbox]:
        """One deactivation super-round: count active neighbors, decide."""
        self._record(inbox)
        if round_index == 0:
            # Initial status exchange; everyone starts active.
            return self.broadcast((MSG_ACTIVE,))
        super_round = round_index  # super-round ell = round index (1-based)
        if super_round > self._budget:
            self._finish()
            return self.silence()
        if self._active:
            if self._active_neighbor_count() <= 3 * self._alpha:
                self._active = False
                self._inactive_round = super_round
                return self.broadcast((MSG_INACTIVE, super_round))
            return self.broadcast((MSG_ACTIVE,))
        # Inactive nodes stay silent but keep listening so they learn when
        # each remaining neighbor deactivates (needed for orientation).
        return self.silence()

    def _finish(self) -> None:
        if self._active:
            self.halt({"active": True, "inactive_round": None, "out_neighbors": ()})
            return
        mine = self._inactive_round
        out = []
        for v, theirs in self._neighbor_inactive_round.items():
            if theirs is None:  # neighbor never deactivated: deactivates "later"
                out.append(v)
            elif theirs > mine or (theirs == mine and v > self.ctx.node):
                out.append(v)
        self.halt(
            {
                "active": False,
                "inactive_round": mine,
                "out_neighbors": tuple(sorted(out)),
            }
        )


@dataclass
class SimulatedForestDecomposition:
    """Result of :func:`run_forest_decomposition_simulated`."""

    success: bool
    inactive_round: Dict[Any, Optional[int]]
    out_neighbors: Dict[Any, Tuple[Any, ...]]
    rejecting_nodes: Tuple[Any, ...]
    rounds: int

    def orientation_edges(self):
        """Yield oriented edges (u, v) with u -> v."""
        for u, outs in self.out_neighbors.items():
            for v in outs:
                yield (u, v)


def run_forest_decomposition_simulated(
    graph: nx.Graph,
    alpha: int = 3,
    budget: Optional[int] = None,
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    topology=None,
    profile=None,
) -> SimulatedForestDecomposition:
    """Run :class:`BarenboimElkinProgram` on *graph*."""
    n = graph.number_of_nodes()
    budget = budget if budget is not None else barenboim_elkin_round_budget(n)
    network = CongestNetwork(
        graph, bandwidth_bits=bandwidth_bits, seed=seed, topology=topology
    )
    result = network.run(
        BarenboimElkinProgram,
        max_rounds=budget + 3,
        config={"alpha": alpha, "budget": budget},
        strict_bandwidth=True,
        profile=profile,
    )
    inactive_round = {}
    out_neighbors = {}
    rejecting = []
    for node, out in result.outputs.items():
        inactive_round[node] = out["inactive_round"]
        out_neighbors[node] = out["out_neighbors"]
        if out["active"]:
            rejecting.append(node)
    return SimulatedForestDecomposition(
        success=not rejecting,
        inactive_round=inactive_round,
        out_neighbors=out_neighbors,
        rejecting_nodes=tuple(sorted(rejecting)),
        rounds=result.rounds,
    )
