"""Genuinely distributed node programs executed on the CONGEST simulator.

These implement the primitive building blocks of the paper as real
message-passing protocols.  They serve two purposes: they demonstrate that
the building blocks fit the CONGEST bandwidth budget, and they provide
ground truth against which the faster emulated layer is cross-validated.
"""

from .bfs import BFSTreeProgram, bfs_tree
from .cole_vishkin import ColeVishkinProgram, cole_vishkin_coloring
from .flood import FloodProgram, flood_eccentricity
from .forest_decomposition import (
    BarenboimElkinProgram,
    run_forest_decomposition_simulated,
)
from .stage2_verification import (
    SimulatedStage2Result,
    Stage2VerificationProgram,
    run_stage2_verification_simulated,
)
from .part_checks import (
    BipartiteCheckProgram,
    CycleCheckProgram,
    run_bipartite_check_simulated,
    run_cycle_check_simulated,
)
from .storm import BroadcastStormProgram

__all__ = [
    "BFSTreeProgram",
    "BarenboimElkinProgram",
    "BipartiteCheckProgram",
    "BroadcastStormProgram",
    "ColeVishkinProgram",
    "CycleCheckProgram",
    "FloodProgram",
    "SimulatedStage2Result",
    "Stage2VerificationProgram",
    "bfs_tree",
    "cole_vishkin_coloring",
    "flood_eccentricity",
    "run_bipartite_check_simulated",
    "run_cycle_check_simulated",
    "run_forest_decomposition_simulated",
    "run_stage2_verification_simulated",
]
