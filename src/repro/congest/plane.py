"""Dense-index message plane: flat per-round buffers over CSR edge slots.

The seed simulator moved payloads through ``dict[node][neighbor]``
inboxes rebuilt every round.  The dense plane replaces that with two
flat buffers of length ``2m`` (one slot per directed edge, addressed by
the :class:`~repro.congest.topology.PlaneArrays` lookup tables) that are
double-buffered across rounds:

* a *send* files the payload into the mirror slot of the sender's CSR
  row entry -- three list stores, no dict allocation;
* a *receive* scans the receiver's own contiguous row slice for slots
  stamped with the previous round's token.

Stamp tokens (the 1-based index of the round that wrote a slot) make
clearing unnecessary: a slot is live exactly when its stamp equals the
token under which the reader scans, so silent rounds and retired
payloads cost nothing.  Per-node ``mark`` stamps let the scheduler skip
the row scan entirely for nodes that received nothing.

The plane is representation only -- validation and accounting stay with
the :class:`~repro.congest.instrumentation.InstrumentationProfile`.  The
faithful profile materializes real dicts from row scans (bit-identical
to the seed: CSR rows are sorted by sender id, which is exactly the
order senders are scheduled in, so key order matches the historical
insertion order).  The fast profile skips dict churn entirely and hands
programs a :class:`SlotInbox` -- a read-only mapping view over the row
slice.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional

from .topology import CompiledTopology

PLANE_ENV_VAR = "REPRO_SIM_PLANE"

PLANES = ("dense", "dict")
"""Message-plane implementations selectable via ``run(plane=...)``."""


class DenseMessagePlane:
    """Double-buffered flat payload/stamp arrays for one simulation run."""

    __slots__ = (
        "topology",
        "indptr",
        "csr_ids",
        "mirror",
        "row_owner",
        "send_slot",
        "broadcast_slots",
        "broadcast_targets",
        "cur_data",
        "next_data",
        "cur_stamp",
        "next_stamp",
        "cur_mark",
        "next_mark",
        "cur_count",
        "next_count",
        "swaps",
    )

    def __init__(self, topology: CompiledTopology):
        arrays = topology.plane_arrays()
        slots = len(topology.indices)
        self.topology = topology
        self.indptr = topology.indptr
        self.csr_ids = arrays.csr_ids
        self.mirror = arrays.mirror
        self.row_owner = arrays.row_owner
        self.send_slot = arrays.send_slot
        self.broadcast_slots = arrays.broadcast_slots
        self.broadcast_targets = arrays.broadcast_targets
        # Stamps start below every real token (reads use token =
        # round_index >= 0, writes token = round_index + 1 >= 1) so the
        # fresh buffers read as empty in round 0.
        self.cur_data = [None] * slots
        self.next_data = [None] * slots
        self.cur_stamp = [-1] * slots
        self.next_stamp = [-1] * slots
        self.cur_mark = [-1] * topology.n
        self.next_mark = [-1] * topology.n
        self.cur_count = [0] * topology.n
        self.next_count = [0] * topology.n
        # Rounds this plane has been swapped through -- a free progress
        # counter for diagnostics and the telemetry round hook's tests.
        self.swaps = 0

    def swap(self) -> None:
        """Promote next-round buffers to current (end of one round)."""
        self.cur_data, self.next_data = self.next_data, self.cur_data
        self.cur_stamp, self.next_stamp = self.next_stamp, self.cur_stamp
        self.cur_mark, self.next_mark = self.next_mark, self.cur_mark
        self.cur_count, self.next_count = self.next_count, self.cur_count
        self.swaps += 1

    def occupancy(self, token: int) -> "tuple[int, int]":
        """Diagnostic probe: ``(receivers, live slots)`` for *token*.

        Scans the *current* buffers for slots stamped with *token* --
        an O(n + 2m) walk intended for opt-in telemetry and tests, not
        the delivery loop (which relies on the per-node marks/counts
        precisely to avoid this scan).
        """
        receivers = sum(1 for mark in self.cur_mark if mark == token)
        slots = sum(1 for stamp in self.cur_stamp if stamp == token)
        return receivers, slots

    # -- receive side ---------------------------------------------------------

    def inbox_dict(self, idx: int, token: int) -> Optional[Dict[Any, Any]]:
        """Materialize node *idx*'s inbox as a real dict, or ``None``.

        Key order is the CSR row order (senders sorted by id), which is
        identical to the seed implementation's insertion order because
        the scheduler steps senders in sorted order.
        """
        if self.cur_mark[idx] != token:
            return None
        lo, hi = self.indptr[idx], self.indptr[idx + 1]
        data = self.cur_data
        ids = self.csr_ids
        remaining = self.cur_count[idx]
        if remaining == hi - lo:
            # Full row (every neighbor sent): build at C speed, no
            # stamp checks.
            return dict(zip(ids[lo:hi], data[lo:hi]))
        stamp = self.cur_stamp
        box: Dict[Any, Any] = {}
        for slot in range(lo, hi):
            if stamp[slot] == token:
                box[ids[slot]] = data[slot]
                remaining -= 1
                if not remaining:
                    break
        return box

    def inbox_view(self, idx: int, token: int) -> Optional["SlotInbox"]:
        """A zero-copy mapping view of node *idx*'s inbox, or ``None``."""
        if self.cur_mark[idx] != token:
            return None
        return SlotInbox(self, idx, token)


class SlotInbox(Mapping):
    """Read-only mapping view over one receiver's stamped row slice.

    Presents the same ``sender id -> payload`` interface (and the same
    sorted-sender iteration order) as a materialized inbox dict without
    allocating or filling one; lookups resolve through the topology's
    per-row slot tables and iteration scans the contiguous row slice.

    The view is valid for the round it was handed to ``step()``: the
    buffers it reads are double-buffered and swap at the end of the
    round, so a program that *retains* its inbox across rounds reads
    stale (typically empty) state.  None of the bundled programs do;
    a program that needs the messages later should copy
    (``dict(inbox.items())``) -- or run under the faithful profile,
    which materializes real dicts.
    """

    __slots__ = ("_plane", "_idx", "_token", "_lo", "_hi")

    def __init__(self, plane: DenseMessagePlane, idx: int, token: int):
        self._plane = plane
        self._idx = idx
        self._token = token
        self._lo = plane.indptr[idx]
        self._hi = plane.indptr[idx + 1]

    def _slot_of(self, sender: Any) -> Optional[int]:
        # send_slot[idx] maps a *target* id to the slot in the target's
        # row owned by idx; by symmetry the slot in idx's own row owned
        # by `sender` is the mirror of idx's entry in sender's map --
        # but the direct row scan below is cheaper than the indirection,
        # so lookups bisect the sorted row instead.
        plane = self._plane
        ids = plane.csr_ids
        lo, hi = self._lo, self._hi
        while lo < hi:
            mid = (lo + hi) // 2
            entry = ids[mid]
            if entry == sender:
                return mid
            try:
                below = entry < sender
            except TypeError:
                below = repr(entry) < repr(sender)
            if below:
                lo = mid + 1
            else:
                hi = mid
        return None

    def __getitem__(self, sender: Any) -> Any:
        slot = self._slot_of(sender)
        plane = self._plane
        if slot is None or plane.cur_stamp[slot] != self._token:
            raise KeyError(sender)
        return plane.cur_data[slot]

    def __contains__(self, sender: Any) -> bool:
        slot = self._slot_of(sender)
        return slot is not None and self._plane.cur_stamp[slot] == self._token

    def __iter__(self) -> Iterator[Any]:
        plane = self._plane
        stamp = plane.cur_stamp
        ids = plane.csr_ids
        token = self._token
        for slot in range(self._lo, self._hi):
            if stamp[slot] == token:
                yield ids[slot]

    def items(self):
        plane = self._plane
        lo, hi = self._lo, self._hi
        if plane.cur_count[self._idx] == hi - lo:
            # Full row (every neighbor sent -- the broadcast-heavy common
            # case): no stamp checks needed.
            return list(zip(plane.csr_ids[lo:hi], plane.cur_data[lo:hi]))
        stamp = plane.cur_stamp
        data = plane.cur_data
        ids = plane.csr_ids
        token = self._token
        return [
            (ids[slot], data[slot])
            for slot in range(lo, hi)
            if stamp[slot] == token
        ]

    def values(self):
        plane = self._plane
        lo, hi = self._lo, self._hi
        if plane.cur_count[self._idx] == hi - lo:
            return plane.cur_data[lo:hi]
        stamp = plane.cur_stamp
        data = plane.cur_data
        token = self._token
        return [
            data[slot]
            for slot in range(lo, hi)
            if stamp[slot] == token
        ]

    def __len__(self) -> int:
        # Receive counts are maintained at delivery time, so sizing an
        # inbox never scans the row.
        return self._plane.cur_count[self._idx]

    def __bool__(self) -> bool:
        # A view only exists when the receiver's mark was stamped, which
        # implies at least one live slot.
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotInbox({dict(self.items())!r})"
