"""Array-module shim for the batched tensor plane (numpy today, cupy later).

The batched simulator (:mod:`repro.congest.batch`) is written against a
tiny slice of the array API -- allocation, boolean masking,
``take_along_axis`` gathers, segment reductions, elementwise arithmetic
-- all of which numpy and cupy spell identically.  Routing every array
op through :func:`get_xp` keeps that seam explicit so a GPU backend is
a drop-in: set ``REPRO_SIM_XP=cupy`` (or pass ``xp="cupy"``) and the
same kernels run on device arrays, falling back to numpy with a clear
error when cupy is not installed.

Shim contract (what a module must provide to slot in here):

* array constructors ``zeros`` / ``full`` / ``arange`` / ``asarray``
  with numpy dtype semantics;
* elementwise ``where`` / ``minimum`` / ``maximum`` / ``frexp`` and
  boolean reductions ``any`` / ``all``;
* ``take_along_axis`` for the mirror-slot gather on the send side;
* either ``ufunc.reduceat`` (numpy) **or** ``ufunc.at`` scatter ops
  (cupy) -- :class:`~repro.congest.batch.BatchTopology` probes for
  ``reduceat`` and falls back to the scatter formulation.

Host round-trips go through :func:`asnumpy` so result assembly never
assumes the arrays live in host memory.
"""

from __future__ import annotations

import os
from typing import Any, Optional

XP_ENV_VAR = "REPRO_SIM_XP"

_MODULES = ("numpy", "cupy")


def get_xp(name: Optional[str] = None):
    """Resolve the array module (arg, then ``REPRO_SIM_XP``, then numpy).

    Raises :class:`ImportError` when the requested module is missing --
    callers that want graceful degradation (the runtime coalescer) probe
    with :func:`xp_available` first.
    """
    if name is None:
        name = os.environ.get(XP_ENV_VAR) or "numpy"
    if name not in _MODULES:
        raise ValueError(
            f"unknown array module {name!r}; choose from {_MODULES}"
        )
    if name == "cupy":
        import cupy  # noqa: F401 -- optional GPU backend

        return cupy
    import numpy

    return numpy


def xp_available(name: Optional[str] = None) -> bool:
    """Whether :func:`get_xp` would succeed for *name* (no raise)."""
    try:
        get_xp(name)
    except ImportError:
        return False
    return True


def asnumpy(array: Any, xp=None):
    """Bring *array* back to host memory as a numpy array.

    numpy arrays pass through untouched; cupy arrays are copied via
    their ``.get()`` device-to-host transfer.
    """
    getter = getattr(array, "get", None)
    if getter is not None and type(array).__module__.startswith("cupy"):
        return getter()
    return array


def int_bit_length(values, xp):
    """Vectorized ``int.bit_length`` for non-negative int64 arrays.

    Uses the ``frexp`` exponent (``v = m * 2**e`` with ``0.5 <= m < 1``
    implies ``e == v.bit_length()``), which is exact for values below
    ``2**53`` -- far above any distance, round counter, or payload
    window the bundled protocols encode.  Zero maps to 0, matching
    ``(0).bit_length()``.
    """
    v = xp.asarray(values)
    _mantissa, exponent = xp.frexp(v.astype(xp.float64))
    return xp.where(v > 0, exponent, 0).astype(xp.int64)
