"""Message size accounting for the CONGEST simulator.

The CONGEST model allows every edge to carry ``O(log n)`` bits per round.
Node programs exchange plain Python values (ints, strings, tuples, ...);
:func:`bit_size` estimates how many bits such a value would occupy on the
wire so the simulator can enforce (or at least report) bandwidth usage.

The encoding model is deliberately simple and deterministic:

* ``None`` and booleans cost 1 bit,
* integers cost ``bit_length + 1`` bits (sign),
* floats cost 64 bits,
* strings cost 8 bits per character,
* tuples/lists/sets cost the sum of their items plus 2 bits of framing
  per item (length/terminator overhead),
* dicts cost the framed sum of keys and values.

These constants do not need to match any particular real encoding; they
only need to scale correctly so that, e.g., a message holding two node
identifiers and a counter is charged ``Θ(log n)`` bits.
"""

from __future__ import annotations

from typing import Any

_FRAME_BITS = 2


def bit_size(value: Any) -> int:
    """Return the estimated wire size of *value* in bits."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return value.bit_length() + 1
    if isinstance(value, float):
        return 64
    if isinstance(value, str):
        return 8 * len(value) + _FRAME_BITS
    if isinstance(value, (tuple, list, frozenset, set)):
        return _FRAME_BITS + sum(bit_size(item) + _FRAME_BITS for item in value)
    if isinstance(value, dict):
        return _FRAME_BITS + sum(
            bit_size(k) + bit_size(v) + _FRAME_BITS for k, v in value.items()
        )
    raise TypeError(
        f"cannot estimate wire size of {type(value).__name__!r}; "
        "CONGEST messages must be built from None/bool/int/float/str/"
        "tuple/list/set/dict"
    )


def default_bandwidth_bits(n: int, words: int = 8) -> int:
    """Return the default per-edge per-round bandwidth budget for *n* nodes.

    The CONGEST model allows ``O(log n)`` bits; we interpret the constant as
    *words* machine words of ``ceil(log2(n + 1)) + 1`` bits each, which
    comfortably fits a small constant number of node identifiers plus tags
    and counters (the paper's messages are of exactly this shape).
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    word = max(1, (n).bit_length()) + 1
    return words * (word + _FRAME_BITS)
