"""Differential-testing fixtures: the legacy dict-plane delivery loop.

The seed's per-node dict-inbox scheduler is no longer a production
path -- ``dense`` (scalar) and the batched tensor plane are the only
dispatch targets -- but it remains the semantic reference the
differential suites compare both against, and custom instrumentation
profiles written against the dict-plane ``deliver()`` API still route
here.  ``CongestNetwork.run(plane="dict")`` lazily imports this module,
so ordinary simulations never load it.

Kept verbatim from the seed implementation (modulo living in a module
function): per-node dict inboxes rebuilt every round, an active list
that shrinks as programs halt, lazy inbox allocation.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..errors import ProtocolError

_EMPTY_INBOX: Mapping[Any, Any] = {}


def run_dict_plane(programs, prof, max_rounds, round_hook=None):
    """The seed delivery loop: per-node dict inboxes rebuilt per round.

    Same contract as ``CongestNetwork._run_dense_plane``: returns
    ``(rounds_executed, active)`` where *active* is the (possibly
    empty) list of still-running programs at exit.
    """
    # Active set: only unhalted programs are stepped; the list shrinks
    # as programs halt (replacing the old twice-per-round
    # all(p.halted) scans over every program).
    active = [item for item in programs.items() if not item[1].halted]
    inboxes: Dict[Any, Dict[Any, Any]] = {}
    rounds_executed = 0

    deliver = prof.deliver
    for round_index in range(max_rounds):
        if not active:
            break
        rounds_executed += 1
        prof.begin_round(round_index)
        next_inboxes: Dict[Any, Dict[Any, Any]] = {}
        get_inbox = inboxes.get
        for node, program in active:
            outbox = program.step(round_index, get_inbox(node, _EMPTY_INBOX))
            if outbox is None:
                continue
            if not isinstance(outbox, Mapping):
                raise ProtocolError(
                    f"node {node!r} returned a non-mapping outbox: {outbox!r}"
                )
            if outbox:
                deliver(node, outbox, next_inboxes)
        inboxes = next_inboxes
        if round_hook is not None:
            round_hook(round_index, len(active), prof)
        active = [item for item in active if not item[1].halted]
    return rounds_executed, active
