"""Batched message plane: ``(B, slots)`` tensors over stacked CSR edge slots.

The scalar :class:`~repro.congest.plane.DenseMessagePlane` moves one
trial's payloads through flat per-round edge-slot buffers.  This module
stacks the slot buffers of ``B`` trials into ``(B, slots)`` tensors so
one array program steps every trial of a sweep cell in lockstep.

Two structural facts make the vectorization cheap:

* **Broadcast send is a gather, not a scatter.**  Slot ``s`` in a
  receiver's CSR row names the *sender* (``indices[s]`` is the dense
  index of the neighbor whose half-edge lands there), so delivering
  every broadcast of a round is one
  ``take_along_axis(node_values, sender, axis=1)`` over the stacked
  sender table -- no mirror-slot scatter, no write conflicts.
* **Stamps collapse to a boolean.**  The scalar plane stamps slots with
  round tokens to avoid clearing; here the gather rebuilds the whole
  ``arrived`` plane from this round's send mask, so "stamp == token"
  becomes the gathered send bit and retired payloads vanish for free.

Payloads travel as parallel integer *lanes* (one ``(B, slots)`` tensor
per scalar field of the program's message tuple -- a distance, a tag, a
round number).  Programs that broadcast structured tuples in the scalar
plane read/write lanes here; the per-program kernels in
:mod:`repro.congest.batch` own the mapping.

The plane is double-buffered exactly like the scalar one: kernels read
``cur_*`` (last round's arrivals), the engine writes ``next_*`` from
this round's sends, and :meth:`swap` promotes them at end of round.
"""

from __future__ import annotations

from typing import Sequence


class BatchedMessagePlane:
    """Double-buffered ``(B, slots)`` arrival/lane tensors for one batch run.

    Args:
        batch: the :class:`~repro.congest.batch.BatchTopology` whose
            stacked sender table addresses the gathers.
        lanes: number of integer payload lanes the program's kernel
            uses (0 for receive-count-only protocols like the storm).
    """

    __slots__ = (
        "batch",
        "lanes",
        "xp",
        "cur_arrived",
        "next_arrived",
        "cur_lanes",
        "next_lanes",
        "swaps",
    )

    def __init__(self, batch, lanes: int):
        xp = batch.xp
        shape = (batch.B, batch.slots_alloc)
        self.batch = batch
        self.lanes = lanes
        self.xp = xp
        self.cur_arrived = xp.zeros(shape, dtype=bool)
        self.next_arrived = xp.zeros(shape, dtype=bool)
        self.cur_lanes = [xp.zeros(shape, dtype=xp.int64) for _ in range(lanes)]
        self.next_lanes = [xp.zeros(shape, dtype=xp.int64) for _ in range(lanes)]
        # Rounds this plane has been swapped through (diagnostics parity
        # with the scalar plane's counter).
        self.swaps = 0

    def send(self, send_mask, lane_values: Sequence) -> None:
        """File one round of pure broadcasts into the next-round buffers.

        *send_mask* is a ``(B, n_pad + 1)`` boolean node tensor (True
        where that trial's node broadcasts this round); *lane_values*
        holds one ``(B, n_pad + 1)`` node tensor per payload lane.  The
        gather through the stacked sender table turns them into slot
        tensors: padding slots point at the dummy node column, which
        never sends, so ragged batches need no masking here.
        """
        xp = self.xp
        sender = self.batch.sender
        self.next_arrived = xp.take_along_axis(send_mask, sender, axis=1)
        for lane, values in enumerate(lane_values):
            self.next_lanes[lane] = xp.take_along_axis(values, sender, axis=1)

    def clear_next(self) -> None:
        """Mark the next-round buffers silent (no node sent)."""
        self.next_arrived = self.xp.zeros(
            (self.batch.B, self.batch.slots_alloc), dtype=bool
        )

    def swap(self) -> None:
        """Promote next-round buffers to current (end of one round)."""
        self.cur_arrived, self.next_arrived = (
            self.next_arrived,
            self.cur_arrived,
        )
        self.cur_lanes, self.next_lanes = self.next_lanes, self.cur_lanes
        self.swaps += 1
