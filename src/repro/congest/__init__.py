"""CONGEST model substrate: simulator, cost ledger, and node programs."""

from .ledger import ChargeRecord, RoundLedger, TreeCostModel
from .message import bit_size, default_bandwidth_bits
from .network import CongestNetwork, SimulationResult
from .node import BROADCAST, NodeContext, NodeProgram

__all__ = [
    "BROADCAST",
    "ChargeRecord",
    "CongestNetwork",
    "NodeContext",
    "NodeProgram",
    "RoundLedger",
    "SimulationResult",
    "TreeCostModel",
    "bit_size",
    "default_bandwidth_bits",
]
