"""CONGEST model substrate: simulator, cost ledger, and node programs."""

from .instrumentation import (
    PROFILES,
    FaithfulProfile,
    FastProfile,
    InstrumentationProfile,
    register_profile,
    resolve_profile,
)
from .ledger import ChargeRecord, RoundLedger, TreeCostModel
from .message import bit_size, default_bandwidth_bits
from .network import CongestNetwork, SimulationResult, resolve_plane
from .node import BROADCAST, NodeContext, NodeProgram
from .plane import PLANE_ENV_VAR, PLANES, DenseMessagePlane, SlotInbox
from .topology import (
    CompiledTopology,
    compile_topology,
    reset_topology_stats,
    topology_stats,
)

__all__ = [
    "BROADCAST",
    "ChargeRecord",
    "CompiledTopology",
    "CongestNetwork",
    "DenseMessagePlane",
    "FaithfulProfile",
    "FastProfile",
    "InstrumentationProfile",
    "NodeContext",
    "NodeProgram",
    "PLANES",
    "PLANE_ENV_VAR",
    "PROFILES",
    "RoundLedger",
    "SimulationResult",
    "SlotInbox",
    "TreeCostModel",
    "resolve_plane",
    "bit_size",
    "compile_topology",
    "default_bandwidth_bits",
    "register_profile",
    "reset_topology_stats",
    "resolve_profile",
    "topology_stats",
]
