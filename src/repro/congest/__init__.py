"""CONGEST model substrate: simulator, cost ledger, and node programs."""

from .batch import (
    WASTE_ENV_VAR,
    BatchAccounting,
    BatchKernel,
    BatchTopology,
    batch_kernels,
    pad_groups,
    register_batch_kernel,
    resolve_pad_waste,
    run_batched,
)
from .instrumentation import (
    PROFILES,
    FaithfulProfile,
    FastProfile,
    InstrumentationProfile,
    register_profile,
    resolve_profile,
)
from .ledger import ChargeRecord, RoundLedger, TreeCostModel
from .message import bit_size, default_bandwidth_bits
from .network import CongestNetwork, SimulationResult, resolve_plane
from .node import BROADCAST, NodeContext, NodeProgram
from .plane import PLANE_ENV_VAR, PLANES, DenseMessagePlane, SlotInbox
from .plane_batched import BatchedMessagePlane
from .topology import (
    BatchArrays,
    CompiledTopology,
    compile_topology,
    reset_topology_stats,
    topology_stats,
)
from .xp import XP_ENV_VAR, asnumpy, get_xp, xp_available

__all__ = [
    "BROADCAST",
    "BatchAccounting",
    "BatchArrays",
    "BatchKernel",
    "BatchTopology",
    "BatchedMessagePlane",
    "ChargeRecord",
    "CompiledTopology",
    "CongestNetwork",
    "DenseMessagePlane",
    "FaithfulProfile",
    "FastProfile",
    "InstrumentationProfile",
    "NodeContext",
    "NodeProgram",
    "PLANES",
    "PLANE_ENV_VAR",
    "PROFILES",
    "RoundLedger",
    "SimulationResult",
    "SlotInbox",
    "TreeCostModel",
    "WASTE_ENV_VAR",
    "XP_ENV_VAR",
    "asnumpy",
    "batch_kernels",
    "resolve_plane",
    "bit_size",
    "compile_topology",
    "default_bandwidth_bits",
    "get_xp",
    "pad_groups",
    "register_batch_kernel",
    "register_profile",
    "reset_topology_stats",
    "resolve_pad_waste",
    "resolve_profile",
    "run_batched",
    "topology_stats",
    "xp_available",
]
