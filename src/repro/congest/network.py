"""Synchronous CONGEST network simulator.

:class:`CongestNetwork` executes a :class:`~repro.congest.node.NodeProgram`
per node of an undirected simple graph in synchronous rounds, delivering
messages along edges and enforcing the CONGEST bandwidth constraint
(``O(log n)`` bits per edge per round).

The simulator is a two-tier core:

* a :class:`~repro.congest.topology.CompiledTopology` holds the
  pre-derived adjacency structure (dense indices, CSR arrays, neighbor
  tuples/sets, degree table, default bandwidth budget) -- compiled once
  per graph and shared by every network/run over it;
* an :class:`~repro.congest.instrumentation.InstrumentationProfile`
  owns the delivery loop's validation + accounting, selectable per run
  (``"faithful"`` keeps full diagnostics, ``"fast"`` trades them for
  throughput without changing outputs, rounds, or halting).

The scheduler itself uses an *active set*: only unhalted programs are
stepped, and the set shrinks as programs halt, so late rounds of a
protocol in which most nodes finished early cost O(active) rather than
O(n).  Inboxes are allocated lazily on first delivery -- silent rounds
allocate nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

import networkx as nx

import os

from ..errors import GraphInputError, ProtocolError, SimulationLimitError
from .instrumentation import InstrumentationProfile, resolve_profile
from .node import NodeContext, NodeProgram
from .plane import PLANE_ENV_VAR, PLANES, DenseMessagePlane
from .topology import CompiledTopology, compile_topology
from ..runtime.seeding import derive_seed

ProgramFactory = Callable[[NodeContext], NodeProgram]

_EMPTY_INBOX: Mapping[Any, Any] = MappingProxyType({})


def resolve_plane(plane: Optional[str]) -> str:
    """Resolve the message-plane selection (arg, env var, dense default)."""
    if plane is None:
        plane = os.environ.get(PLANE_ENV_VAR) or "dense"
    if plane not in PLANES:
        raise ValueError(
            f"unknown message plane {plane!r}; choose from {PLANES}"
        )
    return plane


@dataclass
class SimulationResult:
    """Outcome of a :meth:`CongestNetwork.run` call.

    Attributes:
        rounds: number of executed rounds (a round in which every program
            was already halted is not counted).
        outputs: mapping from node id to the program's ``output``.
        halted: True when every program halted before the round limit.
        total_messages: number of point-to-point messages delivered.
        total_bits: estimated total bits transmitted.
        max_message_bits: largest single message observed.
        bandwidth_bits: per-edge per-round budget used for accounting.
        over_budget_messages: messages that exceeded the budget (only
            non-zero when ``strict_bandwidth`` was False).
        profile: name of the instrumentation profile that ran the
            delivery loop.
        round_stats: per-round ``(messages, bits)`` tuples; populated by
            the faithful profile, empty under counters-only profiles.
    """

    rounds: int
    outputs: Dict[Any, Any]
    halted: bool
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    bandwidth_bits: int = 0
    over_budget_messages: int = 0
    profile: str = "faithful"
    round_stats: Tuple[Tuple[int, int], ...] = ()
    programs: Dict[Any, NodeProgram] = field(default_factory=dict, repr=False)


class CongestNetwork:
    """A synchronous message-passing network over an undirected graph."""

    def __init__(
        self,
        graph: Optional[nx.Graph] = None,
        bandwidth_bits: Optional[int] = None,
        seed: Optional[int] = None,
        topology: Optional[CompiledTopology] = None,
    ):
        """Build a network over *graph* (or a pre-compiled *topology*).

        Args:
            graph: a simple undirected :class:`networkx.Graph`.  Node ids
                must be hashable and sortable (ints are typical).  Its
                adjacency is compiled via
                :func:`~repro.congest.topology.compile_topology`, so
                repeated networks over the same graph object share one
                :class:`CompiledTopology`.
            bandwidth_bits: per-edge per-round budget; defaults to the
                topology's precomputed
                :func:`repro.congest.message.default_bandwidth_bits`.
            seed: master seed from which per-node RNGs are derived.
            topology: an already-compiled topology to use directly
                (skips compilation and graph validation entirely).  When
                both *graph* and *topology* are given they must refer to
                the same graph object.
        """
        if topology is None:
            if graph is None:
                raise GraphInputError(
                    "CongestNetwork requires a graph or a compiled topology"
                )
            topology = compile_topology(graph)
        elif graph is not None and topology.graph is not graph:
            raise GraphInputError(
                "topology was compiled for a different graph object"
            )
        self.topology = topology
        self.graph = topology.graph
        self.n = topology.n
        self.bandwidth_bits = (
            bandwidth_bits if bandwidth_bits is not None else topology.bandwidth_bits
        )
        self.seed = seed
        self._neighbors = topology.neighbors
        self._neighbor_sets = topology.neighbor_sets

    # -- helpers -------------------------------------------------------------

    def _node_rng(self, node: Any) -> random.Random:
        """Deterministic per-node RNG derived from the master seed."""
        return random.Random(derive_seed(self.seed, repr(node)))

    def make_programs(
        self,
        factory: ProgramFactory,
        config: Optional[Mapping[str, Any]] = None,
    ) -> Dict[Any, NodeProgram]:
        """Instantiate one program per node."""
        config = dict(config or {})
        programs: Dict[Any, NodeProgram] = {}
        for node in self.topology.nodes:
            ctx = NodeContext(
                node=node,
                neighbors=self._neighbors[node],
                n=self.n,
                rng=self._node_rng(node),
                config=config,
            )
            programs[node] = factory(ctx)
        return programs

    # -- execution -------------------------------------------------------------

    def run(
        self,
        factory: ProgramFactory,
        max_rounds: int,
        config: Optional[Mapping[str, Any]] = None,
        strict_bandwidth: bool = False,
        raise_on_limit: bool = False,
        profile: Union[None, str, InstrumentationProfile] = None,
        plane: Optional[str] = None,
        round_hook: Optional[Callable[[int, int, InstrumentationProfile], None]] = None,
    ) -> SimulationResult:
        """Run the protocol until all programs halt or *max_rounds* elapse.

        Args:
            factory: builds a program from a :class:`NodeContext`.
            max_rounds: hard round limit.
            config: shared read-only parameters passed to every program.
            strict_bandwidth: raise :class:`BandwidthExceededError` instead
                of merely counting over-budget messages.
            raise_on_limit: raise :class:`SimulationLimitError` when the
                round limit is reached with unhalted programs.
            profile: instrumentation profile for the delivery loop -- a
                registered name (``"faithful"``, ``"fast"``), a profile
                instance, or ``None`` to consult ``REPRO_SIM_PROFILE``
                and fall back to faithful.  Profiles never change
                outputs, rounds, or halting; they trade diagnostic
                depth for throughput.
            plane: message-plane implementation -- ``"dense"`` (flat
                per-round edge-slot buffers, the default), ``"dict"``
                (the seed's per-node dict inboxes, now a
                differential-testing fixture living in
                :mod:`repro.congest._differential`), or ``None`` to
                consult ``REPRO_SIM_PLANE``.  Planes never change
                results.
            round_hook: optional per-round observer, called **once per
                executed round** (never per message) after the round's
                deliveries as ``hook(round_index, active_count,
                profile)`` -- *active_count* is the number of programs
                stepped this round and *profile* exposes the running
                ``total_messages`` / ``total_bits`` counters, so a
                hook can compute per-round deltas.  ``None`` (the
                default) costs one branch per round; hooks must not
                mutate the network or the profile.
        """
        prof = resolve_profile(profile)
        prof.bind(self.topology, self.bandwidth_bits, strict_bandwidth)
        programs = self.make_programs(factory, config)
        # Custom profiles written against the dict-plane API (overriding
        # deliver() only) keep working: they are routed to the dict loop.
        dense_capable = (
            type(prof).deliver_dense is not InstrumentationProfile.deliver_dense
        )
        if resolve_plane(plane) == "dict" or not dense_capable:
            # The dict plane is a differential-testing fixture now, not
            # a production path; load it only when actually requested.
            from ._differential import run_dict_plane

            rounds_executed, active = run_dict_plane(
                programs, prof, max_rounds, round_hook
            )
        else:
            rounds_executed, active = self._run_dense_plane(
                programs, prof, max_rounds, round_hook
            )

        halted = not active
        if not halted and raise_on_limit:
            raise SimulationLimitError(
                f"{len(active)} programs still "
                f"running after {max_rounds} rounds"
            )
        return SimulationResult(
            rounds=rounds_executed,
            outputs={v: p.output for v, p in programs.items()},
            halted=halted,
            total_messages=prof.total_messages,
            total_bits=prof.total_bits,
            max_message_bits=prof.max_message_bits,
            bandwidth_bits=self.bandwidth_bits,
            over_budget_messages=prof.over_budget,
            profile=prof.name,
            round_stats=prof.round_stats(),
            programs=programs,
        )

    def _run_dense_plane(self, programs, prof, max_rounds, round_hook=None):
        """Dense delivery loop: flat edge-slot buffers, CSR row scans.

        Payloads move through a
        :class:`~repro.congest.plane.DenseMessagePlane`; the profile
        files each outbox into mirror slots and receivers scan their own
        contiguous row slice.  Round tokens are 1-based so the zeroed
        stamp buffers read as empty in round 0.
        """
        index = self.topology.index
        active = [
            (index[node], node, program)
            for node, program in programs.items()
            if not program.halted
        ]
        plane = DenseMessagePlane(self.topology)
        rounds_executed = 0

        deliver = prof.deliver_dense
        inbox_of = (
            plane.inbox_dict if prof.materialize_inboxes else plane.inbox_view
        )
        for round_index in range(max_rounds):
            if not active:
                break
            rounds_executed += 1
            prof.begin_round(round_index)
            token = round_index + 1
            for idx, node, program in active:
                inbox = inbox_of(idx, round_index)
                outbox = program.step(
                    round_index, _EMPTY_INBOX if inbox is None else inbox
                )
                if outbox is None:
                    continue
                if not isinstance(outbox, Mapping):
                    raise ProtocolError(
                        f"node {node!r} returned a non-mapping outbox: {outbox!r}"
                    )
                if outbox:
                    deliver(idx, node, outbox, plane, token)
            plane.swap()
            if round_hook is not None:
                round_hook(round_index, len(active), prof)
            active = [item for item in active if not item[2].halted]
        return rounds_executed, active
