"""Synchronous CONGEST network simulator.

:class:`CongestNetwork` executes a :class:`~repro.congest.node.NodeProgram`
per node of an undirected simple graph in synchronous rounds, delivering
messages along edges and enforcing the CONGEST bandwidth constraint
(``O(log n)`` bits per edge per round).

The simulator is deliberately faithful rather than fast; it is used to run
the primitive algorithms (BFS, forest decomposition, Cole-Vishkin, local
checks) that validate the emulated layer.  Graphs up to a few thousand
nodes simulate comfortably.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

import networkx as nx

from ..errors import (
    BandwidthExceededError,
    GraphInputError,
    ProtocolError,
    SimulationLimitError,
)
from .message import bit_size, default_bandwidth_bits
from .node import BROADCAST, NodeContext, NodeProgram
from ..runtime.seeding import derive_seed

ProgramFactory = Callable[[NodeContext], NodeProgram]


@dataclass
class SimulationResult:
    """Outcome of a :meth:`CongestNetwork.run` call.

    Attributes:
        rounds: number of executed rounds (a round in which every program
            was already halted is not counted).
        outputs: mapping from node id to the program's ``output``.
        halted: True when every program halted before the round limit.
        total_messages: number of point-to-point messages delivered.
        total_bits: estimated total bits transmitted.
        max_message_bits: largest single message observed.
        bandwidth_bits: per-edge per-round budget used for accounting.
        over_budget_messages: messages that exceeded the budget (only
            non-zero when ``strict_bandwidth`` was False).
    """

    rounds: int
    outputs: Dict[Any, Any]
    halted: bool
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    bandwidth_bits: int = 0
    over_budget_messages: int = 0
    programs: Dict[Any, NodeProgram] = field(default_factory=dict, repr=False)


class CongestNetwork:
    """A synchronous message-passing network over an undirected graph."""

    def __init__(
        self,
        graph: nx.Graph,
        bandwidth_bits: Optional[int] = None,
        seed: Optional[int] = None,
    ):
        """Build a network over *graph*.

        Args:
            graph: a simple undirected :class:`networkx.Graph`.  Node ids
                must be hashable and sortable (ints are typical).
            bandwidth_bits: per-edge per-round budget; defaults to
                :func:`repro.congest.message.default_bandwidth_bits`.
            seed: master seed from which per-node RNGs are derived.
        """
        if graph.is_directed() or graph.is_multigraph():
            raise GraphInputError("CongestNetwork requires a simple undirected graph")
        if any(u == v for u, v in graph.edges()):
            raise GraphInputError("CongestNetwork does not support self-loops")
        if graph.number_of_nodes() == 0:
            raise GraphInputError("CongestNetwork requires at least one node")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.bandwidth_bits = (
            bandwidth_bits
            if bandwidth_bits is not None
            else default_bandwidth_bits(self.n)
        )
        self.seed = seed
        self._neighbors: Dict[Any, tuple] = {
            v: tuple(sorted(graph.neighbors(v))) for v in graph.nodes()
        }
        # Frozen membership sets for the delivery hot loop; rebuilding a
        # set per delivered message dominated run() on dense graphs.
        self._neighbor_sets: Dict[Any, frozenset] = {
            v: frozenset(nbrs) for v, nbrs in self._neighbors.items()
        }

    # -- helpers -------------------------------------------------------------

    def _node_rng(self, node: Any) -> random.Random:
        """Deterministic per-node RNG derived from the master seed."""
        return random.Random(derive_seed(self.seed, repr(node)))

    def make_programs(
        self,
        factory: ProgramFactory,
        config: Optional[Mapping[str, Any]] = None,
    ) -> Dict[Any, NodeProgram]:
        """Instantiate one program per node."""
        config = dict(config or {})
        programs: Dict[Any, NodeProgram] = {}
        for node in sorted(self.graph.nodes()):
            ctx = NodeContext(
                node=node,
                neighbors=self._neighbors[node],
                n=self.n,
                rng=self._node_rng(node),
                config=config,
            )
            programs[node] = factory(ctx)
        return programs

    # -- execution -------------------------------------------------------------

    def run(
        self,
        factory: ProgramFactory,
        max_rounds: int,
        config: Optional[Mapping[str, Any]] = None,
        strict_bandwidth: bool = False,
        raise_on_limit: bool = False,
    ) -> SimulationResult:
        """Run the protocol until all programs halt or *max_rounds* elapse.

        Args:
            factory: builds a program from a :class:`NodeContext`.
            max_rounds: hard round limit.
            config: shared read-only parameters passed to every program.
            strict_bandwidth: raise :class:`BandwidthExceededError` instead
                of merely counting over-budget messages.
            raise_on_limit: raise :class:`SimulationLimitError` when the
                round limit is reached with unhalted programs.
        """
        programs = self.make_programs(factory, config)
        inboxes: Dict[Any, Dict[Any, Any]] = {v: {} for v in programs}
        total_messages = 0
        total_bits = 0
        max_message_bits = 0
        over_budget = 0
        rounds_executed = 0

        for round_index in range(max_rounds):
            if all(p.halted for p in programs.values()):
                break
            rounds_executed += 1
            next_inboxes: Dict[Any, Dict[Any, Any]] = {v: {} for v in programs}
            any_activity = False
            for node, program in programs.items():
                if program.halted:
                    continue
                any_activity = True
                outbox = program.step(round_index, inboxes[node])
                if outbox is None:
                    continue
                if not isinstance(outbox, Mapping):
                    raise ProtocolError(
                        f"node {node!r} returned a non-mapping outbox: {outbox!r}"
                    )
                outbox = self._expand_broadcast(node, outbox)
                for target, payload in outbox.items():
                    if target not in self._neighbor_sets[node]:
                        raise ProtocolError(
                            f"node {node!r} attempted to message non-neighbor "
                            f"{target!r}"
                        )
                    bits = bit_size(payload)
                    total_messages += 1
                    total_bits += bits
                    max_message_bits = max(max_message_bits, bits)
                    if bits > self.bandwidth_bits:
                        if strict_bandwidth:
                            raise BandwidthExceededError(
                                node, target, bits, self.bandwidth_bits
                            )
                        over_budget += 1
                    next_inboxes[target][node] = payload
            inboxes = next_inboxes
            if not any_activity:
                rounds_executed -= 1
                break

        halted = all(p.halted for p in programs.values())
        if not halted and raise_on_limit:
            raise SimulationLimitError(
                f"{sum(not p.halted for p in programs.values())} programs still "
                f"running after {max_rounds} rounds"
            )
        return SimulationResult(
            rounds=rounds_executed,
            outputs={v: p.output for v, p in programs.items()},
            halted=halted,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_message_bits,
            bandwidth_bits=self.bandwidth_bits,
            over_budget_messages=over_budget,
            programs=programs,
        )

    def _expand_broadcast(self, node: Any, outbox: Mapping[Any, Any]) -> Dict[Any, Any]:
        """Expand the BROADCAST sentinel into per-neighbor entries."""
        if BROADCAST not in outbox:
            return dict(outbox)
        expanded: Dict[Any, Any] = {}
        broadcast_payload = outbox[BROADCAST]
        for neighbor in self._neighbors[node]:
            expanded[neighbor] = broadcast_payload
        for target, payload in outbox.items():
            if target != BROADCAST:
                expanded[target] = payload
        return expanded
