"""Compiled graph topology shared across simulator runs.

:class:`CongestNetwork` historically re-derived its adjacency structure
from the :mod:`networkx` graph on every construction: per-node sorted
neighbor tuples, frozen membership sets, and the bandwidth budget.  For
a sweep that replays hundreds of trials on the same topology this work
was repeated per run even though the graph never changed.

A :class:`CompiledTopology` does that derivation exactly once per graph:

* node ids are normalized to **dense indices** ``0..n-1`` (sorted id
  order) with a CSR-style adjacency encoding (``indptr``/``indices``
  arrays over dense indices);
* per-node neighbor tuples (original ids, sorted), frozen neighbor
  sets for O(1) membership checks in the delivery loop, and frozen
  neighbor *index* sets over the dense indices;
* a dense degree table and the default per-edge bandwidth budget.

:func:`compile_topology` memoizes compilations per graph *object* (a
``WeakKeyDictionary``, so retired graphs do not leak), which is the hook
the runtime layer relies on: :func:`repro.runtime.run_jobs` hands the
same graph object to every trial of a sweep via its ``graphs`` hint, so
the topology is compiled exactly once per process no matter how many
jobs replay it.  :func:`topology_stats` exposes compile/reuse counters
so tests (and benchmarks) can assert that reuse actually happens.
"""

from __future__ import annotations

import threading
import weakref
from array import array
from dataclasses import dataclass
from typing import Any, Dict, Tuple

import networkx as nx

from ..errors import GraphInputError
from .message import default_bandwidth_bits


class CompiledTopology:
    """Immutable, pre-derived adjacency structure of one simple graph.

    Attributes:
        graph: the source :class:`networkx.Graph`.
        n: number of nodes.
        m: number of edges.
        nodes: node ids in sorted order; position = dense index.
        index: mapping from node id to dense index.
        indptr: CSR row pointers (length ``n + 1``); the neighbors of
            dense index ``i`` are ``indices[indptr[i]:indptr[i + 1]]``.
        indices: CSR column indices (dense neighbor indices, sorted by
            the neighbor's node id within each row).
        degrees: dense degree table (``degrees[i]`` = degree of node
            ``nodes[i]``).
        neighbors: node id -> sorted tuple of neighbor ids (the shape
            :class:`~repro.congest.node.NodeContext` consumes).
        neighbor_sets: node id -> frozenset of neighbor ids (delivery
            loop membership checks).
        neighbor_index_sets: dense index -> frozenset of dense neighbor
            indices.
        bandwidth_bits: the default CONGEST budget for this ``n`` (see
            :func:`repro.congest.message.default_bandwidth_bits`).
    """

    __slots__ = (
        "graph",
        "n",
        "m",
        "nodes",
        "index",
        "indptr",
        "indices",
        "degrees",
        "neighbors",
        "neighbor_sets",
        "neighbor_index_sets",
        "bandwidth_bits",
        "__weakref__",
    )

    def __init__(self, graph: nx.Graph):
        if graph.is_directed() or graph.is_multigraph():
            raise GraphInputError("CongestNetwork requires a simple undirected graph")
        if any(u == v for u, v in graph.edges()):
            raise GraphInputError("CongestNetwork does not support self-loops")
        if graph.number_of_nodes() == 0:
            raise GraphInputError("CongestNetwork requires at least one node")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        nodes: Tuple[Any, ...] = tuple(sorted(graph.nodes()))
        self.nodes = nodes
        index: Dict[Any, int] = {v: i for i, v in enumerate(nodes)}
        self.index = index

        indptr = array("q", [0])
        indices = array("q")
        degrees = array("q")
        neighbors: Dict[Any, Tuple[Any, ...]] = {}
        neighbor_sets: Dict[Any, frozenset] = {}
        neighbor_index_sets = []
        for v in nodes:
            nbrs = tuple(sorted(graph.neighbors(v)))
            neighbors[v] = nbrs
            neighbor_sets[v] = frozenset(nbrs)
            row = [index[w] for w in nbrs]
            indices.extend(row)
            indptr.append(len(indices))
            degrees.append(len(nbrs))
            neighbor_index_sets.append(frozenset(row))
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        self.neighbors = neighbors
        self.neighbor_sets = neighbor_sets
        self.neighbor_index_sets = tuple(neighbor_index_sets)
        self.bandwidth_bits = default_bandwidth_bits(self.n)

    # -- dense-index accessors ------------------------------------------------

    def neighbor_indices(self, i: int):
        """Dense neighbor indices of dense index *i* (CSR row slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def degree(self, node: Any) -> int:
        """Degree of *node* (by id)."""
        return self.degrees[self.index[node]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTopology(n={self.n}, m={self.m})"


@dataclass
class TopologyStats:
    """Process-wide compile/reuse counters for :func:`compile_topology`."""

    compiled: int = 0
    reused: int = 0


_stats = TopologyStats()
_lock = threading.Lock()
_memo: "weakref.WeakKeyDictionary[nx.Graph, CompiledTopology]" = (
    weakref.WeakKeyDictionary()
)


def compile_topology(graph: nx.Graph, reuse: bool = True) -> CompiledTopology:
    """Compile (or fetch the memoized compilation of) *graph*.

    The memo is keyed by graph object identity -- networkx graphs hash
    by identity and are never mutated by the simulator, so two networks
    built over the *same* graph object share one compilation, while a
    structurally equal copy compiles separately.  Pass ``reuse=False``
    to force a fresh compilation (it is still stored for later reuse).

    Callers who mutate a graph between runs should recompile; as a
    guard, a memo hit whose node/edge counts no longer match the graph
    is discarded and recompiled (same-count rewires are not detected).
    """
    if reuse:
        with _lock:
            cached = _memo.get(graph)
        if cached is not None:
            if (
                cached.n == graph.number_of_nodes()
                and cached.m == graph.number_of_edges()
            ):
                with _lock:
                    _stats.reused += 1
                return cached
            # Stale hit (graph mutated since compilation): fall through
            # and recompile; the fresh topology overwrites the memo.
    topology = CompiledTopology(graph)
    with _lock:
        _memo[graph] = topology
        _stats.compiled += 1
    return topology


def topology_stats() -> TopologyStats:
    """A snapshot of the process-wide compile/reuse counters."""
    with _lock:
        return TopologyStats(compiled=_stats.compiled, reused=_stats.reused)


def reset_topology_stats() -> None:
    """Zero the compile/reuse counters (test isolation helper)."""
    with _lock:
        _stats.compiled = 0
        _stats.reused = 0
