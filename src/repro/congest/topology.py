"""Compiled graph topology shared across simulator runs.

:class:`CongestNetwork` historically re-derived its adjacency structure
from the :mod:`networkx` graph on every construction: per-node sorted
neighbor tuples, frozen membership sets, and the bandwidth budget.  For
a sweep that replays hundreds of trials on the same topology this work
was repeated per run even though the graph never changed.

A :class:`CompiledTopology` does that derivation exactly once per graph:

* node ids are normalized to **dense indices** ``0..n-1`` (sorted id
  order) with a CSR-style adjacency encoding (``indptr``/``indices``
  arrays over dense indices);
* per-node neighbor tuples (original ids, sorted), frozen neighbor
  sets for O(1) membership checks in the delivery loop, and frozen
  neighbor *index* sets over the dense indices;
* a dense degree table and the default per-edge bandwidth budget.

:func:`compile_topology` memoizes compilations per graph *object* (a
``WeakKeyDictionary``, so retired graphs do not leak), which is the hook
the runtime layer relies on: :func:`repro.runtime.run_jobs` hands the
same graph object to every trial of a sweep via its ``graphs`` hint, so
the topology is compiled exactly once per process no matter how many
jobs replay it.  :func:`topology_stats` exposes compile/reuse counters
so tests (and benchmarks) can assert that reuse actually happens.
"""

from __future__ import annotations

import threading
import weakref
from array import array
from dataclasses import dataclass
from typing import Any, Dict, Tuple

import networkx as nx

from ..errors import GraphInputError
from .message import default_bandwidth_bits


class CompiledTopology:
    """Immutable, pre-derived adjacency structure of one simple graph.

    Attributes:
        graph: the source :class:`networkx.Graph`.
        n: number of nodes.
        m: number of edges.
        nodes: node ids in sorted order; position = dense index.
        index: mapping from node id to dense index.
        indptr: CSR row pointers (length ``n + 1``); the neighbors of
            dense index ``i`` are ``indices[indptr[i]:indptr[i + 1]]``.
        indices: CSR column indices (dense neighbor indices, sorted by
            the neighbor's node id within each row).
        degrees: dense degree table (``degrees[i]`` = degree of node
            ``nodes[i]``).
        neighbors: node id -> sorted tuple of neighbor ids (the shape
            :class:`~repro.congest.node.NodeContext` consumes).
        neighbor_sets: node id -> frozenset of neighbor ids (delivery
            loop membership checks).
        neighbor_index_sets: dense index -> frozenset of dense neighbor
            indices.
        bandwidth_bits: the default CONGEST budget for this ``n`` (see
            :func:`repro.congest.message.default_bandwidth_bits`).
    """

    __slots__ = (
        "graph",
        "n",
        "m",
        "nodes",
        "index",
        "indptr",
        "indices",
        "degrees",
        "neighbors",
        "neighbor_sets",
        "neighbor_index_sets",
        "bandwidth_bits",
        "_plane_arrays",
        "_edge_arrays",
        "_batch_arrays",
        "__weakref__",
    )

    def __init__(self, graph: nx.Graph):
        if graph.is_directed() or graph.is_multigraph():
            raise GraphInputError("CongestNetwork requires a simple undirected graph")
        if any(u == v for u, v in graph.edges()):
            raise GraphInputError("CongestNetwork does not support self-loops")
        if graph.number_of_nodes() == 0:
            raise GraphInputError("CongestNetwork requires at least one node")
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        nodes: Tuple[Any, ...] = tuple(sorted(graph.nodes()))
        self.nodes = nodes
        index: Dict[Any, int] = {v: i for i, v in enumerate(nodes)}
        self.index = index

        indptr = array("q", [0])
        indices = array("q")
        degrees = array("q")
        neighbors: Dict[Any, Tuple[Any, ...]] = {}
        neighbor_sets: Dict[Any, frozenset] = {}
        neighbor_index_sets = []
        for v in nodes:
            nbrs = tuple(sorted(graph.neighbors(v)))
            neighbors[v] = nbrs
            neighbor_sets[v] = frozenset(nbrs)
            row = [index[w] for w in nbrs]
            indices.extend(row)
            indptr.append(len(indices))
            degrees.append(len(nbrs))
            neighbor_index_sets.append(frozenset(row))
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        self.neighbors = neighbors
        self.neighbor_sets = neighbor_sets
        self.neighbor_index_sets = tuple(neighbor_index_sets)
        self.bandwidth_bits = default_bandwidth_bits(self.n)
        self._plane_arrays = None
        self._edge_arrays = None
        self._batch_arrays = None

    # -- dense-index accessors ------------------------------------------------

    def plane_arrays(self) -> "PlaneArrays":
        """Edge-slot arrays backing the dense message plane (lazy, cached).

        Every directed edge ``(u, v)`` owns one *slot*: the position of
        ``v`` in ``u``'s CSR row addresses the half-edge ``u -> v``, and
        messages travelling ``u -> v`` land in the **mirror** slot (the
        position of ``u`` in ``v``'s row), so a receiver's mail for one
        round is exactly the stamped entries of its own row slice.  The
        arrays are derived once per topology and shared by every run.
        """
        arrays = self._plane_arrays
        if arrays is None:
            arrays = self._plane_arrays = PlaneArrays(self)
        return arrays

    def edge_arrays(self):
        """Undirected edges as numpy index arrays ``(eu, ev)``, ``eu < ev``.

        One row per edge, endpoints as dense indices, ordered by
        ``(eu, row position)`` -- the contiguous representation the
        CSR-native partition pipeline sweeps instead of networkx edge
        views.  Lazily built and cached; raises :class:`ImportError`
        when numpy is unavailable (callers fall back to the dict layer).
        """
        arrays = self._edge_arrays
        if arrays is None:
            import numpy as np

            eu = []
            ev = []
            indptr, indices = self.indptr, self.indices
            for u in range(self.n):
                for j in range(indptr[u], indptr[u + 1]):
                    v = indices[j]
                    if u < v:
                        eu.append(u)
                        ev.append(v)
            arrays = self._edge_arrays = (
                np.asarray(eu, dtype=np.int64),
                np.asarray(ev, dtype=np.int64),
            )
        return arrays

    def batch_arrays(self) -> "BatchArrays":
        """Numpy views of the CSR structure for the batched tensor plane.

        Zero-copy where possible: ``indptr``/``indices`` are
        ``np.frombuffer`` views over the compiled ``array('q')``
        buffers, ``degrees`` and ``row_owner`` are derived from them at
        C speed.  Lazily built and cached per topology, so every trial
        of a batch over the same graph shares one export (mirroring
        :meth:`plane_arrays` on the scalar side).  Raises
        :class:`ImportError` when numpy is unavailable -- the runtime's
        batch coalescer probes for numpy before forming batch jobs.
        """
        arrays = self._batch_arrays
        if arrays is None:
            import numpy as np

            indptr = np.frombuffer(self.indptr, dtype=np.int64)
            if len(self.indices):
                indices = np.frombuffer(self.indices, dtype=np.int64)
            else:
                indices = np.zeros(0, dtype=np.int64)
            degrees = np.diff(indptr)
            row_owner = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
            arrays = self._batch_arrays = BatchArrays(
                indptr=indptr,
                indices=indices,
                degrees=degrees,
                row_owner=row_owner,
            )
        return arrays

    def neighbor_indices(self, i: int):
        """Dense neighbor indices of dense index *i* (CSR row slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def degree(self, node: Any) -> int:
        """Degree of *node* (by id)."""
        return self.degrees[self.index[node]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTopology(n={self.n}, m={self.m})"


class PlaneArrays:
    """Flat edge-slot lookup tables for the dense message plane.

    Attributes:
        csr_ids: per-slot original node id of the row entry
            (``csr_ids[s] = nodes[indices[s]]``) -- the *sender* id seen
            by the receiver owning slot ``s``.
        mirror: per-slot index of the reversed half-edge: for slot ``j``
            encoding ``u -> v`` in u's row, ``mirror[j]`` is the slot of
            ``v -> u`` in v's row.  Writing a payload for ``v`` into
            ``mirror[j]`` files it exactly where v's row scan finds it.
        row_owner: per-slot dense index of the row's owner (receiver).
        send_slot: per sender dense index, mapping from a *target's
            original id* to the slot (in the target's row) that delivers
            to it -- one dict ``get`` both validates neighborship and
            addresses the write.
        broadcast_slots / broadcast_targets: per sender dense index, the
            mirror-slot list and receiver-index list of its whole row --
            a pure broadcast zips the two and never touches the CSR.

    All tables are plain Python lists of pre-boxed ints (not ``array``
    typecodes): the delivery loop indexes them millions of times per
    run, and list reads return shared int objects instead of boxing a
    fresh ``PyLong`` per access.
    """

    __slots__ = (
        "csr_ids",
        "mirror",
        "row_owner",
        "send_slot",
        "broadcast_slots",
        "broadcast_targets",
    )

    def __init__(self, topology: "CompiledTopology"):
        indptr = topology.indptr
        indices = list(topology.indices)
        nodes = topology.nodes
        n = topology.n
        csr_ids = [nodes[i] for i in indices]
        position: Dict[Tuple[int, int], int] = {}
        row_owner = [0] * len(indices)
        for u in range(n):
            for j in range(indptr[u], indptr[u + 1]):
                position[(u, indices[j])] = j
                row_owner[j] = u
        mirror = [position[(v, u)] for (u, v) in position]
        send_slot = []
        broadcast_slots = []
        broadcast_targets = []
        for u in range(n):
            lo, hi = indptr[u], indptr[u + 1]
            row_mirror = mirror[lo:hi]
            send_slot.append(dict(zip(csr_ids[lo:hi], row_mirror)))
            broadcast_slots.append(row_mirror)
            broadcast_targets.append(indices[lo:hi])
        self.csr_ids = csr_ids
        self.mirror = mirror
        self.row_owner = row_owner
        self.send_slot = tuple(send_slot)
        self.broadcast_slots = tuple(broadcast_slots)
        self.broadcast_targets = tuple(broadcast_targets)


@dataclass(frozen=True)
class BatchArrays:
    """Numpy CSR views of one topology (see ``batch_arrays``).

    Attributes:
        indptr: row pointers, length ``n + 1`` (int64 view).
        indices: per-slot dense index of the slot's *sender* -- for slot
            ``s`` in receiver ``row_owner[s]``'s row, ``indices[s]`` is
            the dense index of the neighbor whose broadcast lands there.
        degrees: dense degree table (``np.diff(indptr)``).
        row_owner: per-slot dense index of the row's owner (receiver).
    """

    indptr: Any
    indices: Any
    degrees: Any
    row_owner: Any


@dataclass
class TopologyStats:
    """Process-wide compile/reuse counters for :func:`compile_topology`."""

    compiled: int = 0
    reused: int = 0


_stats = TopologyStats()
_lock = threading.Lock()
_memo: "weakref.WeakKeyDictionary[nx.Graph, CompiledTopology]" = (
    weakref.WeakKeyDictionary()
)


def compile_topology(graph: nx.Graph, reuse: bool = True) -> CompiledTopology:
    """Compile (or fetch the memoized compilation of) *graph*.

    The memo is keyed by graph object identity -- networkx graphs hash
    by identity and are never mutated by the simulator, so two networks
    built over the *same* graph object share one compilation, while a
    structurally equal copy compiles separately.  Pass ``reuse=False``
    to force a fresh compilation (it is still stored for later reuse).

    Callers who mutate a graph between runs should recompile; as a
    guard, a memo hit whose node/edge counts no longer match the graph
    is discarded and recompiled (same-count rewires are not detected).
    """
    if reuse:
        with _lock:
            cached = _memo.get(graph)
        if cached is not None:
            if (
                cached.n == graph.number_of_nodes()
                and cached.m == graph.number_of_edges()
            ):
                with _lock:
                    _stats.reused += 1
                return cached
            # Stale hit (graph mutated since compilation): fall through
            # and recompile; the fresh topology overwrites the memo.
    topology = CompiledTopology(graph)
    with _lock:
        _memo[graph] = topology
        _stats.compiled += 1
    return topology


def topology_stats() -> TopologyStats:
    """A snapshot of the process-wide compile/reuse counters."""
    with _lock:
        return TopologyStats(compiled=_stats.compiled, reused=_stats.reused)


def reset_topology_stats() -> None:
    """Zero the compile/reuse counters (test isolation helper)."""
    with _lock:
        _stats.compiled = 0
        _stats.reused = 0
