"""Round-cost accounting for emulated CONGEST algorithms.

The paper's multi-phase algorithm runs on auxiliary contracted graphs and
is *emulated* on the underlying network through trees (paper Sections
2.1.5, 2.1.6 and 4.1).  The emulated layer in this library performs the
algorithm's state changes directly and charges the communication cost of
every step to a :class:`RoundLedger`, using explicit formulas recorded
alongside each charge.  This keeps round accounting auditable: every
benchmark row can be traced back to a list of (rounds, category, note)
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class ChargeRecord:
    """A single round charge."""

    rounds: int
    category: str
    note: str = ""


@dataclass
class RoundLedger:
    """Accumulates round charges, grouped by category.

    Categories are free-form dotted strings such as ``"stage1.forest"`` or
    ``"stage2.bfs"``; :meth:`by_category` groups by full category string
    and :meth:`by_prefix` by the first dotted component.
    """

    records: List[ChargeRecord] = field(default_factory=list)

    def charge(self, rounds: int, category: str, note: str = "") -> int:
        """Record *rounds* rounds of cost; returns the charged amount."""
        if rounds < 0:
            raise ValueError(f"cannot charge a negative number of rounds: {rounds}")
        if rounds:
            self.records.append(ChargeRecord(int(rounds), category, note))
        return int(rounds)

    @property
    def total(self) -> int:
        """Total rounds charged so far."""
        return sum(r.rounds for r in self.records)

    def by_category(self) -> Dict[str, int]:
        """Total rounds per full category string."""
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.category] = out.get(record.category, 0) + record.rounds
        return out

    def by_prefix(self) -> Dict[str, int]:
        """Total rounds per first dotted category component."""
        out: Dict[str, int] = {}
        for record in self.records:
            prefix = record.category.split(".", 1)[0]
            out[prefix] = out.get(prefix, 0) + record.rounds
        return out

    def merge(self, other: "RoundLedger") -> None:
        """Append all records from *other*."""
        self.records.extend(other.records)

    def merge_parallel(self, others: List["RoundLedger"], category: str) -> int:
        """Charge the max total of *others* (components running in parallel).

        Distinct parts of a partition occupy disjoint node/edge sets, so
        their per-part protocols run concurrently; the network-level round
        cost is the maximum over parts, not the sum.  *others* may be any
        iterable (it is materialized once) and may be empty -- an empty
        collection charges nothing and returns 0.
        """
        others = list(others)
        cost = max((o.total for o in others), default=0)
        self.charge(cost, category, f"max over {len(others)} parallel components")
        return cost

    def __iter__(self) -> Iterator[ChargeRecord]:
        return iter(self.records)

    def summary(self, indent: str = "") -> str:
        """Human-readable multi-line summary."""
        lines = [f"{indent}total rounds: {self.total}"]
        for category, rounds in sorted(self.by_category().items()):
            lines.append(f"{indent}  {category}: {rounds}")
        return "\n".join(lines)


@dataclass
class TreeCostModel:
    """Cost formulas for the tree-based emulation primitives.

    All formulas are expressed in rounds on the underlying graph ``G`` and
    follow the paper's emulation arguments:

    * broadcasting one ``O(log n)``-bit message down a tree of height ``h``
      takes ``h`` rounds; a message of ``w`` words pipelines in
      ``h + w - 1`` rounds;
    * convergecast of ``k`` distinct ``O(log n)``-bit messages up a tree of
      height ``h`` pipelines in ``h + k - 1`` rounds;
    * one neighbor exchange across part boundaries is 1 round.
    """

    def broadcast(self, height: int, words: int = 1) -> int:
        """Rounds to broadcast a *words*-word message down the tree."""
        if height < 0:
            raise ValueError("height must be non-negative")
        return max(1, height + max(1, words) - 1)

    def convergecast(self, height: int, messages: int = 1) -> int:
        """Rounds to aggregate *messages* distinct words up the tree."""
        if height < 0:
            raise ValueError("height must be non-negative")
        return max(1, height + max(1, messages) - 1)

    def neighbor_exchange(self) -> int:
        """Rounds for a single exchange over part-boundary edges."""
        return 1

    def super_round(self, height: int, alpha: int) -> int:
        """Rounds to emulate one super-round of forest decomposition.

        Per paper Section 2.1.5: one boundary exchange, a convergecast in
        which each node forwards at most ``3*alpha + 1`` aggregated
        (root-id, count) messages, and a broadcast of the Active/Inactive
        decision.
        """
        k = 3 * alpha + 1
        return (
            self.neighbor_exchange()
            + self.convergecast(height, messages=k)
            + self.broadcast(height)
        )

    def aux_message_relay(self, height: int, words: int = 1) -> int:
        """Rounds to relay one auxiliary-graph message via part trees.

        A message from ``v(P)`` to an auxiliary neighbor travels down P's
        tree, over a boundary edge, and up the neighboring part's tree
        (paper Section 2.1.6): ``2h + 1`` for one-word messages.
        """
        return self.broadcast(height, words) + 1 + self.convergecast(height, words)
