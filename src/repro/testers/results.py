"""Result containers shared by the distributed testers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..partition.stage1 import Stage1Result


@dataclass
class PartVerdict:
    """Stage II outcome for a single part.

    Attributes:
        pid: part id (root node id).
        accepted: the part found no evidence of non-planarity.
        reason: ``None`` when accepted; otherwise one of ``"density"``
            (m > 3n - 6), ``"violation"`` (a sampled non-tree edge
            interlaced another), or ``"embedding"`` (embedding failure
            treated as rejection, only when so configured).
        n / m: part size.
        non_tree_edges: number of BFS non-tree edges.
        bfs_depth: depth of the part's BFS tree.
        embedding_planar: whether the embedding subroutine produced a
            planar embedding (False means the fallback ordering was used).
        sampled: how many non-tree edges the detection step sampled.
        violating_exact: exact number of violating edges (analysis mode
            only; ``None`` otherwise).
        rounds: CONGEST rounds charged for this part's Stage II.
    """

    pid: Any
    accepted: bool
    reason: Optional[str]
    n: int
    m: int
    non_tree_edges: int
    bfs_depth: int
    embedding_planar: bool
    sampled: int
    violating_exact: Optional[int]
    rounds: int


@dataclass
class PlanarityTestResult:
    """Outcome of the full Theorem 1 tester.

    ``accepted`` is the global verdict: True iff *no* node output reject.
    ``rejected_stage`` records where evidence appeared (``"stage1"`` for
    arboricity evidence, ``"stage2"`` for density/violation evidence).
    """

    accepted: bool
    rejected_stage: Optional[str]
    rejecting_parts: Tuple[Any, ...]
    stage1: Stage1Result
    part_verdicts: List[PartVerdict] = field(default_factory=list)
    stage1_rounds: int = 0
    stage2_rounds: int = 0

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds: Stage I plus the parallel Stage II max."""
        return self.stage1_rounds + self.stage2_rounds

    @property
    def total_violating_exact(self) -> Optional[int]:
        """Sum of exact violating-edge counts when analysis mode was on.

        Parts rejected before the labeling step (density check) carry no
        count and do not contribute; ``None`` when no part was analyzed.
        """
        counts = [
            v.violating_exact
            for v in self.part_verdicts
            if v.violating_exact is not None
        ]
        if not counts:
            return None
        return sum(counts)


@dataclass
class ApplicationTestResult:
    """Outcome of the Corollary 16 testers (cycle-freeness/bipartiteness)."""

    accepted: bool
    rejecting_parts: Tuple[Any, ...]
    partition_result: Stage1Result
    partition_rounds: int
    verification_rounds: int

    @property
    def rounds(self) -> int:
        """Total CONGEST rounds (partition + parallel per-part checks)."""
        return self.partition_rounds + self.verification_rounds
