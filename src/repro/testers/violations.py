"""Violating (interlacing) non-tree edges: Definition 7 and its detection.

Two intervals ``(a, b)`` and ``(c, d)`` (with ``a < b``, ``c < d``,
``a < c``) *intersect* when ``a < c < b < d``; a non-tree edge is
*violating* when it intersects some other non-tree edge.  Claims 8-10:

* no violating edge => the part is planar (so on a gamma-far part at
  least a gamma fraction of the edges is violating -- Corollary 9);
* the part is planar and the labels come from a planar embedding =>
  there is no violating edge (one-sided error).

This module provides the exact violating-edge analysis (both a brute
force reference and an ``O(k log k)`` Fenwick sweep) and the paper's
sampling-based distributed detection procedure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..graphs.structures import FenwickTree

Interval = Tuple[int, int]


def edges_interlace(first: Interval, second: Interval) -> bool:
    """Definition 7 predicate on two rank intervals (order-insensitive)."""
    (a, b), (c, d) = first, second
    if a > c:
        (a, b), (c, d) = (c, d), (a, b)
    return a < c < b < d


def violating_mask_bruteforce(intervals: Sequence[Interval]) -> List[bool]:
    """O(k^2) reference implementation of the violating-edge mask."""
    k = len(intervals)
    mask = [False] * k
    for i in range(k):
        for j in range(i + 1, k):
            if edges_interlace(intervals[i], intervals[j]):
                mask[i] = True
                mask[j] = True
    return mask


def violating_mask(intervals: Sequence[Interval], universe: int) -> List[bool]:
    """O(k log k + universe) violating-edge mask via two Fenwick sweeps.

    An interval ``e = (a, b)`` is violating iff

    * (A) some interval starts strictly inside ``e`` and ends strictly
      after ``b``, or
    * (B) some interval ends strictly inside ``e`` and starts strictly
      before ``a``.

    Args:
        intervals: rank intervals with endpoints in ``[0, universe)``.
        universe: exclusive upper bound on endpoint values.
    """
    k = len(intervals)
    mask = [False] * k

    # Sweep A: process queries by decreasing b; insert interval lefts for
    # intervals with d > current b.
    by_right_desc = sorted(range(k), key=lambda i: -intervals[i][1])
    tree = FenwickTree(universe)
    insert_order = sorted(range(k), key=lambda i: -intervals[i][1])
    ptr = 0
    for qi in by_right_desc:
        a, b = intervals[qi]
        while ptr < k and intervals[insert_order[ptr]][1] > b:
            tree.add(intervals[insert_order[ptr]][0])
            ptr += 1
        if tree.range_sum(a + 1, b - 1) > 0:
            mask[qi] = True

    # Sweep B: process queries by increasing a; insert interval rights for
    # intervals with c < current a.
    by_left_asc = sorted(range(k), key=lambda i: intervals[i][0])
    tree = FenwickTree(universe)
    insert_order = sorted(range(k), key=lambda i: intervals[i][0])
    ptr = 0
    for qi in by_left_asc:
        a, b = intervals[qi]
        while ptr < k and intervals[insert_order[ptr]][0] < a:
            tree.add(intervals[insert_order[ptr]][1])
            ptr += 1
        if tree.range_sum(a + 1, b - 1) > 0:
            mask[qi] = True

    return mask


def count_violating(intervals: Sequence[Interval], universe: int) -> int:
    """Number of violating non-tree edges (exact, for analysis)."""
    return sum(violating_mask(intervals, universe))


def find_any_interlacement(
    intervals: Sequence[Interval],
) -> Optional[Tuple[int, int]]:
    """Indices of one interlacing pair, or None.  O(k log k) stack sweep."""
    # Sort by left endpoint; maintain a stack of open intervals.  This is
    # only used for witness extraction in reports, so an O(k^2) fallback
    # on small inputs would also do; we keep it near-linear regardless.
    order = sorted(range(len(intervals)), key=lambda i: intervals[i])
    best: Optional[Tuple[int, int]] = None
    # simple approach: for each interval find the max-right interval
    # starting inside it.
    events = sorted(
        (intervals[i][0], intervals[i][1], i) for i in order
    )
    for idx, (a, b, i) in enumerate(events):
        for a2, b2, j in events[idx + 1 :]:
            if a2 >= b:
                break
            if a < a2 < b < b2:
                return (i, j)
    return best


@dataclass
class SamplingOutcome:
    """Result of the distributed sampling-based violation detection.

    Attributes:
        detected: True when a sampled edge interlaced some non-tree edge.
        sample_target: the target sample size s.
        sampled: number of edges actually sampled.
        truncated: whether the congestion cap (4s) kicked in.
        witness: one interlacing (sampled, other) interval pair if found.
    """

    detected: bool
    sample_target: int
    sampled: int
    truncated: bool
    witness: Optional[Tuple[Interval, Interval]] = None


def sample_and_detect(
    intervals: Sequence[Interval],
    sample_target: int,
    rng: random.Random,
    universe: Optional[int] = None,
    mask: Optional[List[bool]] = None,
) -> SamplingOutcome:
    """Paper Section 2.2.2 detection: sample ~s non-tree edges, broadcast
    their labels, and let every edge owner test interlacement.

    Each non-tree edge is independently selected with probability
    ``min(1, s / k)``; if far more than the expected number is selected
    (beyond ``4s``), the excess is dropped (the paper aborts; dropping
    preserves one-sided error and only weakens detection in a
    1/poly(n)-probability event).  A violation is detected when a sampled
    edge interlaces *any* non-tree edge, sampled or not.

    When *universe* is given (an exclusive upper bound on endpoint
    values), the per-sample interlacement test resolves against the
    Fenwick-sweep :func:`violating_mask` in ``O(k log k)`` total instead
    of the seed's ``O(s * k)`` pairwise scan -- the mask answers exactly
    the predicate "does edge i interlace some other edge", so the
    outcome (including the reported witness) is identical.  Callers
    that already computed the mask (analysis mode) pass it via *mask*
    to skip the rebuild.
    """
    k = len(intervals)
    if k == 0 or sample_target <= 0:
        return SamplingOutcome(False, sample_target, 0, False)
    probability = min(1.0, sample_target / k)
    chosen = [i for i in range(k) if rng.random() < probability]
    cap = max(4 * sample_target, 1)
    truncated = len(chosen) > cap
    if truncated:
        chosen = chosen[:cap]
    if universe is not None or mask is not None:
        if mask is None:
            mask = violating_mask(intervals, universe)
        for i in chosen:
            if mask[i]:
                # Reconstruct the seed's witness: the first partner in
                # index order.
                for j in range(k):
                    if j != i and edges_interlace(intervals[i], intervals[j]):
                        return SamplingOutcome(
                            True,
                            sample_target,
                            len(chosen),
                            truncated,
                            witness=(intervals[i], intervals[j]),
                        )
        return SamplingOutcome(False, sample_target, len(chosen), truncated)
    for i in chosen:
        for j in range(k):
            if j != i and edges_interlace(intervals[i], intervals[j]):
                return SamplingOutcome(
                    True,
                    sample_target,
                    len(chosen),
                    truncated,
                    witness=(intervals[i], intervals[j]),
                )
    return SamplingOutcome(False, sample_target, len(chosen), truncated)
