"""Embedding-derived lexicographic node labels (paper Section 2.2.2).

Within each part, Stage II builds a BFS tree ``T_B`` and, using the
circular clockwise ordering of each node's incident edges from the
combinatorial embedding, labels every tree edge by its position among the
node's child edges *counting clockwise from the parent edge* (the root
starts at an arbitrary first edge).  A node's label is the concatenation
of the edge labels on its root path; lexicographic order over labels is
exactly DFS preorder of ``T_B`` with children visited in rotation order,
so we assign each node its preorder *rank* -- an equivalent, compact
representation of the order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..errors import GraphInputError
from ..graphs.utils import id_key
from ..planarity.rotation import RotationSystem


def deterministic_bfs_tree(
    graph: nx.Graph, root: Any
) -> Tuple[Dict[Any, Optional[Any]], Dict[Any, int]]:
    """BFS tree matching the distributed construction of Section 2.2.1.

    All nodes of depth ``d`` announce in the same round, so a node at
    depth ``d + 1`` picks the minimum-id announcing neighbor as its
    parent -- the same rule as :class:`repro.congest.programs.bfs`.

    Returns (parents, depths); ``parents[root] is None``.
    """
    depths = {root: 0}
    order = deque([root])
    while order:
        v = order.popleft()
        for w in graph.adj[v]:
            if w not in depths:
                depths[w] = depths[v] + 1
                order.append(w)
    if len(depths) != graph.number_of_nodes():
        raise GraphInputError("BFS labeling requires a connected part")
    parents: Dict[Any, Optional[Any]] = {root: None}
    for v, d in depths.items():
        if v == root:
            continue
        candidates = [w for w in graph.adj[v] if depths[w] == d - 1]
        parents[v] = min(candidates, key=id_key)
    return parents, depths


def children_in_rotation_order(
    rotation: RotationSystem,
    parents: Dict[Any, Optional[Any]],
    v: Any,
) -> List[Any]:
    """Children of *v* in ``T_B``, ordered clockwise from the parent edge.

    For the root the order starts at the rotation's first entry, which is
    the emulation of "r_j arbitrarily labels one of its incident edges by
    1" -- any fixed starting edge satisfies the paper's requirement.
    """
    rot = rotation.rotation(v)
    parent = parents[v]
    if parent is None:
        ordered = rot
    else:
        idx = rot.index(parent)
        ordered = rot[idx + 1 :] + rot[:idx]
    return [w for w in ordered if parents.get(w) == v]


def embedding_ranks(
    graph: nx.Graph,
    root: Any,
    rotation: RotationSystem,
    parents: Dict[Any, Optional[Any]],
) -> Dict[Any, int]:
    """Preorder rank of every node under the embedding-ordered DFS of T_B.

    Ranks realize the lexicographic order on the paper's labels: the
    label of u is a strict prefix of v's iff u is an ancestor of v (and
    then rank(u) < rank(v)); otherwise the first differing edge label
    orders the subtrees exactly as rotation-ordered DFS does.
    """
    ranks: Dict[Any, int] = {}
    counter = 0
    stack = [root]
    while stack:
        v = stack.pop()
        ranks[v] = counter
        counter += 1
        # Push children in reverse so the first child is visited first.
        for child in reversed(children_in_rotation_order(rotation, parents, v)):
            stack.append(child)
    if len(ranks) != graph.number_of_nodes():
        raise GraphInputError(
            "rotation order did not reach every node; embedding does not "
            "match the part"
        )
    return ranks


def non_tree_intervals(
    graph: nx.Graph,
    parents: Dict[Any, Optional[Any]],
    ranks: Dict[Any, int],
) -> List[Tuple[int, int, Any, Any]]:
    """Non-tree edges of T_B as rank intervals ``(a, b, u, v)`` with a < b.

    Definition 7 orients each edge so the smaller label comes first; the
    returned tuples keep the original endpoints for reporting.
    """
    intervals: List[Tuple[int, int, Any, Any]] = []
    for u, v in graph.edges():
        if parents.get(u) == v or parents.get(v) == u:
            continue
        a, b = ranks[u], ranks[v]
        if a > b:
            a, b = b, a
            u, v = v, u
        intervals.append((a, b, u, v))
    return intervals


def max_label_length(depths: Dict[Any, int]) -> int:
    """Length (in edge labels = id-sized words) of the longest node label."""
    return max(depths.values(), default=0)


def euler_tour_positions(
    graph: nx.Graph,
    root: Any,
    rotation: RotationSystem,
    parents: Dict[Any, Optional[Any]],
) -> Tuple[Dict[Tuple[Any, Any], int], int]:
    """Corner positions of non-tree half-edges along the tree's Euler tour.

    The complement of a spanning tree in the sphere is a single disk whose
    boundary is the tree's facial walk; every non-tree edge is a chord of
    that disk, attached at the *corner* (angular gap between consecutive
    tree edges in the rotation) where it appears.  The walk assigns each
    non-tree half-edge a distinct position; a rotation system is a
    genus-0 embedding of the part iff no two chords interlace in this
    circular order.

    This is the corner-refined variant of the paper's labeling: the
    literal Claim 10 labeling (first-visit preorder ranks, see
    :func:`embedding_ranks`) discards the corner information and admits
    interlacements even on planar embeddings (e.g. the 3x3 grid --
    reproduced in the test-suite), whereas the corner positions restore
    the exact planarity characterization with the same O(D)-round,
    O(log n)-bit-label distributed implementation (the root distributes
    prefix sums of subtree corner counts down ``T_B``).

    Returns:
        (positions, total): ``positions[(v, x)]`` is the walk position of
        non-tree half-edge ``(v, x)``; ``total`` is the number of
        positions assigned (= 2 * number of non-tree edges).
    """
    n = graph.number_of_nodes()
    positions: Dict[Tuple[Any, Any], int] = {}
    if n <= 1:
        return positions, 0

    def is_tree(v: Any, w: Any) -> bool:
        return parents.get(v) == w or parents.get(w) == v

    rotations = {v: rotation.rotation(v) for v in graph.nodes()}
    index_of = {
        v: {w: i for i, w in enumerate(rot)} for v, rot in rotations.items()
    }
    counter = 0

    # Start by traversing the first tree edge of the root's rotation; the
    # gap preceding it is scanned on the final return.
    root_rot = rotations[root]
    first_tree_index = next(
        i for i, w in enumerate(root_rot) if is_tree(root, w)
    )
    current, incoming = root_rot[first_tree_index], root
    traversed = 1
    total_tree_half_edges = 2 * (n - 1)

    while traversed < total_tree_half_edges:
        rot = rotations[current]
        i = index_of[current][incoming]
        while True:
            i = (i + 1) % len(rot)
            w = rot[i]
            if is_tree(current, w):
                current, incoming = w, current
                traversed += 1
                break
            positions[(current, w)] = counter
            counter += 1

    # Final gap at the root: from after the last incoming edge up to (and
    # excluding) the starting tree edge.
    if current != root:
        raise GraphInputError("Euler tour did not return to the root")
    i = index_of[root][incoming]
    while True:
        i = (i + 1) % len(root_rot)
        if i == first_tree_index:
            break
        w = root_rot[i]
        if is_tree(root, w):
            raise GraphInputError("Euler tour missed a tree edge")
        positions[(root, w)] = counter
        counter += 1
    return positions, counter


def corner_intervals(
    graph: nx.Graph,
    parents: Dict[Any, Optional[Any]],
    positions: Dict[Tuple[Any, Any], int],
) -> List[Tuple[int, int, Any, Any]]:
    """Non-tree edges as corner-position intervals ``(a, b, u, v)``, a < b.

    All 2k endpoints are distinct, so interlacement is exactly strict
    alternation around the disk boundary.
    """
    intervals: List[Tuple[int, int, Any, Any]] = []
    for u, v in graph.edges():
        if parents.get(u) == v or parents.get(v) == u:
            continue
        a, b = positions[(u, v)], positions[(v, u)]
        if a > b:
            a, b = b, a
            u, v = v, u
        intervals.append((a, b, u, v))
    return intervals
