"""Generic hereditary-property testing on minor-free graphs.

The paper notes after Corollary 16 that "similar statements can be
derived for any hereditary property that can either be verified or
(property) tested in a number of rounds that is polynomial in the
diameter".  This module provides that generalization:

* a property is supplied as a :class:`PartChecker` -- a per-part verifier
  that inspects one connected low-diameter part and returns a verdict
  plus its round cost (polynomial in the part diameter);
* the tester partitions the graph (Theorem 3 deterministically or
  Theorem 4 randomized) with cut target ``epsilon * m / 2`` and runs the
  checker inside every part in parallel.

Soundness argument (mirrors Corollary 16): the property is *hereditary*
(closed under taking subgraphs) and, for the distance transfer, closed
under disjoint unions of satisfying parts after removing the cut edges.
If G is epsilon-far, removing the <= epsilon*m/2 cut edges leaves some
part that still violates the property, and a sound checker flags it.
Completeness: parts of a satisfying graph are subgraphs, hence satisfy
the (hereditary) property, and a complete checker accepts them.

Built-in checkers: cycle-freeness, bipartiteness, planarity,
outerplanarity (via the "add a universal apex vertex, test planarity"
characterization), and bounded-degeneracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

import networkx as nx

from ..graphs.utils import degeneracy, require_simple
from ..partition.stage1 import partition_stage1
from ..partition.weighted_selection import partition_randomized
from ..planarity.lr_planarity import check_planarity
from .labels import deterministic_bfs_tree
from .results import ApplicationTestResult

PartChecker = Callable[[nx.Graph, Any], Tuple[bool, int]]
"""A per-part verifier: ``checker(part_subgraph, root) -> (ok, rounds)``.

The returned round count must be polynomial in the part's diameter for
the overall round bound to hold; built-in checkers charge
``O(diameter)`` (a BFS plus constant-round local exchanges), matching
their distributed implementations.
"""


def _bfs_rounds(sub: nx.Graph, root: Any) -> Tuple[dict, dict, int]:
    parents, depths = deterministic_bfs_tree(sub, root)
    depth = max(depths.values(), default=0)
    return parents, depths, depth + 2


def cycle_freeness_checker(sub: nx.Graph, root: Any) -> Tuple[bool, int]:
    """Accept iff the part is a tree (BFS + non-tree-edge scan)."""
    _parents, _depths, rounds = _bfs_rounds(sub, root)
    ok = sub.number_of_edges() == sub.number_of_nodes() - 1
    return ok, rounds


def bipartiteness_checker(sub: nx.Graph, root: Any) -> Tuple[bool, int]:
    """Accept iff the part has no odd cycle (BFS parity check)."""
    parents, depths, rounds = _bfs_rounds(sub, root)
    for u, v in sub.edges():
        if parents.get(u) == v or parents.get(v) == u:
            continue
        if depths[u] % 2 == depths[v] % 2:
            return False, rounds
    return True, rounds


def planarity_checker(sub: nx.Graph, root: Any) -> Tuple[bool, int]:
    """Exact per-part planarity (LR), charged at the GH embedding cost.

    Unlike Stage II of Theorem 1 this leaks the oracle's verdict
    directly; it exists as the `verified in poly(diameter) rounds`
    flavour of the paper's remark (planarity of a D-diameter part is
    decidable in O(D) rounds by collecting the part at the root, whose
    edge count is O(n_j) by the density check).
    """
    _p, _d, rounds = _bfs_rounds(sub, root)
    n = sub.number_of_nodes()
    rounds += min(n, 3 * n)  # convergecast of O(n_j) edge words
    return check_planarity(sub).is_planar, rounds


def outerplanarity_checker(sub: nx.Graph, root: Any) -> Tuple[bool, int]:
    """Accept iff the part is outerplanar.

    A graph is outerplanar iff adding one universal apex vertex keeps it
    planar (all nodes must fit on the outer face).  Outerplanar graphs
    are K4- and K23-minor free, so outerplanarity is a hereditary,
    minor-closed property -- exactly the setting of the paper's remark.
    """
    _p, _d, rounds = _bfs_rounds(sub, root)
    n = sub.number_of_nodes()
    rounds += min(n, 3 * n)
    apex = object()  # guaranteed-fresh node id
    augmented = nx.Graph(sub)
    augmented.add_edges_from((apex, v) for v in sub.nodes())
    return check_planarity(augmented).is_planar, rounds


def degeneracy_checker(bound: int) -> PartChecker:
    """Checker factory: accept iff the part's degeneracy is <= *bound*.

    Bounded degeneracy is hereditary (subgraphs only lose edges).
    """

    def checker(sub: nx.Graph, root: Any) -> Tuple[bool, int]:
        _p, _d, rounds = _bfs_rounds(sub, root)
        # distributed peeling runs in O(log n_j) phases of local rounds;
        # charge diameter + log as a conservative poly(diameter) cost
        rounds += int(math.ceil(math.log2(max(2, sub.number_of_nodes()))))
        return degeneracy(sub) <= bound, rounds

    return checker


BUILTIN_CHECKERS = {
    "cycle-free": cycle_freeness_checker,
    "bipartite": bipartiteness_checker,
    "planar": planarity_checker,
    "outerplanar": outerplanarity_checker,
}
"""Named built-in part checkers for :func:`test_hereditary_property`."""


@dataclass
class HereditaryTestResult(ApplicationTestResult):
    """ApplicationTestResult plus the checker's name for reporting."""

    property_name: str = ""


def test_hereditary_property(
    graph: nx.Graph,
    checker: PartChecker | str,
    epsilon: float = 0.1,
    alpha: int = 3,
    method: str = "deterministic",
    delta: float = 0.1,
    seed: Optional[int] = None,
) -> HereditaryTestResult:
    """Test any hereditary property on a minor-free graph.

    Args:
        graph: the input graph (minor-free promise with arboricity
            <= alpha for the partition quality guarantee).
        checker: a :data:`PartChecker` or the name of a built-in
            (``"cycle-free"``, ``"bipartite"``, ``"planar"``,
            ``"outerplanar"``).
        epsilon: distance parameter; the partition targets a cut of
            ``epsilon * m / 2`` edges.
        alpha / method / delta / seed: as in the Corollary 16 testers.

    Returns:
        A :class:`HereditaryTestResult`; one-sided for sound-and-complete
        checkers (deterministic method), success probability >= 1 - delta
        for the randomized partition.
    """
    require_simple(graph, "test_hereditary_property input")
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if isinstance(checker, str):
        name = checker
        try:
            checker = BUILTIN_CHECKERS[checker]
        except KeyError:
            raise ValueError(
                f"unknown built-in checker {checker!r}; choose from "
                f"{sorted(BUILTIN_CHECKERS)}"
            ) from None
    else:
        name = getattr(checker, "__name__", "custom")

    target = epsilon * graph.number_of_edges() / 2
    if method == "deterministic":
        stage1 = partition_stage1(
            graph, epsilon=epsilon, alpha=alpha, target_cut=target
        )
    elif method == "randomized":
        stage1 = partition_randomized(
            graph, epsilon=epsilon, delta=delta, alpha=alpha,
            target_cut=target, seed=seed,
        )
    else:
        raise ValueError(f"unknown method {method!r}")

    rejecting = []
    max_rounds = 0
    for pid, part in stage1.partition.parts.items():
        sub = graph.subgraph(part.nodes)
        ok, rounds = checker(sub, part.root)
        max_rounds = max(max_rounds, rounds)
        if not ok:
            rejecting.append(pid)

    return HereditaryTestResult(
        accepted=not rejecting,
        rejecting_parts=tuple(sorted(rejecting, key=repr)),
        partition_result=stage1,
        partition_rounds=stage1.rounds,
        verification_rounds=max_rounds,
        property_name=name,
    )
