"""The full distributed planarity tester (Theorem 1).

Composition of Stage I (partition; may reject on arboricity evidence)
and Stage II (per-part verification; may reject on density or violating
edges).  Guarantees reproduced:

* **completeness / one-sided error**: a planar graph is accepted by
  every node with probability 1 (Claim 3 first part + Claim 10);
* **soundness**: an epsilon-far graph is rejected with probability
  ``1 - 1/poly(n)`` -- either Stage I rejects, or the final cut is at
  most ``epsilon m / 2``, some part is ``epsilon/2``-far (Claim 3), that
  part has ``>= (epsilon/2) m(Gj)`` violating edges (Corollary 9), and
  the ``Theta(log n / epsilon)`` sample hits one w.h.p.;
* **round complexity**: ``O(log n * poly(1/epsilon))``, accounted by the
  ledger (Stage II parts run in parallel; its cost is the max over
  parts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from ..congest.ledger import TreeCostModel
from ..graphs.utils import require_simple
from ..partition.stage1 import partition_stage1
from ..runtime.seeding import derive_rng
from .results import PlanarityTestResult
from .stage2 import Stage2Config, extract_part_subgraphs, test_part


@dataclass
class PlanarityTestConfig:
    """All knobs of the Theorem 1 tester.

    Attributes:
        epsilon: distance parameter.
        alpha: arboricity bound verified in Stage I (3 = planar).
        sample_constant: Stage II sampling constant c in
            ``s = c log2(n) / epsilon``.
        early_stop: stop Stage I once the cut target is met
            (DESIGN.md substitution 2).
        charge_full_budget: charge the full ``O(log n)``
            forest-decomposition schedule per phase (paper behavior).
        max_phases: optional Stage I phase cap override.
        reject_on_embedding_failure: see :class:`Stage2Config`.
        collect_exact_violations: per-part exact violating-edge counts
            (analysis mode, used by benchmarks).
        engine: Stage I partition engine (``"auto"``/``"dense"``/
            ``"legacy"``; ``None`` consults ``REPRO_PARTITION_ENGINE``).
        native: CSR-native Stage II pipeline (see
            :class:`Stage2Config.native`).  Both knobs change wall-clock
            only, never results.
    """

    epsilon: float = 0.1
    alpha: int = 3
    sample_constant: float = 2.0
    early_stop: bool = True
    charge_full_budget: bool = True
    max_phases: Optional[int] = None
    reject_on_embedding_failure: bool = False
    collect_exact_violations: bool = False
    engine: Optional[str] = None
    native: bool = True

    def stage2(self) -> Stage2Config:
        """The Stage II view of this configuration."""
        return Stage2Config(
            epsilon=self.epsilon,
            sample_constant=self.sample_constant,
            reject_on_embedding_failure=self.reject_on_embedding_failure,
            collect_exact_violations=self.collect_exact_violations,
            native=self.native,
        )


def stage2_over_partition(
    graph: nx.Graph,
    partition,
    stage2_config: Stage2Config,
    seed: Optional[int] = None,
):
    """Run Stage II over an arbitrary rooted partition.

    Used by the full tester and by the E12 ablation, which feeds Stage II
    with the Elkin-Neiman/MPX baseline partition instead of Stage I.
    Returns ``(verdicts, rejecting_pids, max_part_rounds)``; parts run in
    parallel, so the stage's round cost is the max over parts.
    """
    model = TreeCostModel()
    n_total = graph.number_of_nodes()
    verdicts = []
    rejecting = []
    max_part_rounds = 0
    subgraphs = (
        extract_part_subgraphs(graph, partition)
        if stage2_config.native
        else {}
    )
    for pid in sorted(partition.parts, key=repr):
        part = partition.parts[pid]
        rng = derive_rng(seed, repr(pid), "stage2")
        verdict = test_part(
            graph,
            part,
            n_total=n_total,
            rng=rng,
            config=stage2_config,
            cost_model=model,
            subgraph=subgraphs.get(pid),
        )
        verdicts.append(verdict)
        max_part_rounds = max(max_part_rounds, verdict.rounds)
        if not verdict.accepted:
            rejecting.append(pid)
    return verdicts, rejecting, max_part_rounds


def test_planarity(
    graph: nx.Graph,
    epsilon: float = 0.1,
    seed: Optional[int] = None,
    config: Optional[PlanarityTestConfig] = None,
) -> PlanarityTestResult:
    """Run the Theorem 1 tester on *graph*.

    Args:
        graph: simple undirected graph; need not be connected (parts
            never span components, and components run side by side).
        epsilon: distance parameter (ignored when *config* is given).
        seed: randomness seed for Stage II sampling.
        config: full configuration; defaults to
            ``PlanarityTestConfig(epsilon=epsilon)``.

    Returns:
        A :class:`PlanarityTestResult`; ``result.accepted`` is the global
        verdict and ``result.rounds`` the charged CONGEST round count.
    """
    require_simple(graph, "test_planarity input")
    if config is None:
        config = PlanarityTestConfig(epsilon=epsilon)
    n_total = graph.number_of_nodes()
    if n_total == 0:
        raise ValueError("test_planarity requires at least one node")

    stage1 = partition_stage1(
        graph,
        epsilon=config.epsilon,
        alpha=config.alpha,
        max_phases=config.max_phases,
        early_stop=config.early_stop,
        charge_full_budget=config.charge_full_budget,
        engine=config.engine,
    )
    if not stage1.success:
        return PlanarityTestResult(
            accepted=False,
            rejected_stage="stage1",
            rejecting_parts=stage1.rejecting_parts,
            stage1=stage1,
            stage1_rounds=stage1.rounds,
            stage2_rounds=0,
        )

    verdicts, rejecting, max_part_rounds = stage2_over_partition(
        graph, stage1.partition, config.stage2(), seed=seed
    )

    return PlanarityTestResult(
        accepted=not rejecting,
        rejected_stage="stage2" if rejecting else None,
        rejecting_parts=tuple(sorted(rejecting, key=repr)),
        stage1=stage1,
        part_verdicts=verdicts,
        stage1_rounds=stage1.rounds,
        stage2_rounds=max_part_rounds,
    )
