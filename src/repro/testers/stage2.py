"""Stage II: per-part planarity verification (paper Section 2.2).

For each part ``G_j`` of the Stage I partition (all parts run in
parallel; the stage's round cost is the maximum over parts):

1. build the BFS tree ``T_B^j`` and aggregate ``n(G_j)``, ``m(G_j)``
   (Section 2.2.1 preprocessing);
2. reject when ``m > 3n - 6`` (Euler density check);
3. compute a combinatorial embedding with the embedding subroutine
   (Ghaffari-Haeupler in the paper; this library's LR implementation
   here -- see DESIGN.md substitution 1).  On non-planar parts, where GH
   may emit an arbitrary ordering, use the id-sorted fallback rotation;
4. derive the lexicographic labels / preorder ranks;
5. sample ``s = Theta(log n / epsilon)`` non-tree edges and reject when
   any sampled edge interlaces another non-tree edge (Definition 7).

Round accounting per part (charged to the ledger, category "stage2.*"):
BFS costs ``depth + 1``; the counts convergecast/broadcast ``2 depth + 2``;
the embedding ``D + min(ceil(log2 n_j), D)`` with ``D <= 2 depth`` (the GH
bound); label distribution pipelines ``depth`` words down the tree
(``2 depth``); the sample gather/broadcast pipelines ``s`` edge labels of
``<= 2 depth`` words (``depth + 2 s depth``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

import networkx as nx

from ..congest.ledger import RoundLedger, TreeCostModel
from ..partition.parts import Part
from ..planarity.embedding import identity_rotation
from ..planarity.lr_planarity import check_planarity
from .labels import (
    corner_intervals,
    deterministic_bfs_tree,
    embedding_ranks,
    euler_tour_positions,
    max_label_length,
    non_tree_intervals,
)
from .results import PartVerdict
from .violations import sample_and_detect, violating_mask


@dataclass
class Stage2Config:
    """Knobs for Stage II.

    Attributes:
        epsilon: distance parameter (detection threshold is epsilon/2
            per part, per Claim 3).
        sample_constant: c in ``s = ceil(c * log2(n) / epsilon)``.
        criterion: which interlacement criterion defines "violating":

            * ``"corner"`` (default): non-tree edges as chords of the
              tree-complement disk, positioned at their Euler-tour
              corners.  Sound *and* complete: a planar embedding has no
              violating edge, and a violating-edge-free part is planar.
            * ``"preorder"``: the paper's literal Definition 7 labels
              (first-visit preorder ranks).  Sound (Claim 8 holds) but
              NOT complete: planar parts can exhibit interlacements
              (counterexample: the 3x3 grid; see tests), which would
              break one-sided error.  Provided for comparison/benchmarks.
        reject_on_embedding_failure: treat an embedding-subroutine
            failure as rejection evidence.  Off by default: the paper's
            GH subroutine may emit an ordering even on non-planar parts,
            and we exercise the sampling machinery rather than leak the
            LR oracle's verdict (DESIGN.md substitution 1).
        collect_exact_violations: also compute the exact violating-edge
            count per part (analysis only; used by benchmark E13).
        native: run the CSR-native Stage II pipeline -- parts are
            extracted into concrete subgraphs in one pass over the
            parent adjacency (preserving its iteration order, so the
            embedding and every downstream label is unchanged) and
            sampled interlacements resolve against the Fenwick sweep
            instead of the ``O(s*k)`` pairwise scan.  ``False`` keeps
            the seed path (networkx subgraph views) as the
            differential-testing reference; verdicts are identical.
    """

    epsilon: float = 0.1
    sample_constant: float = 2.0
    criterion: str = "corner"
    reject_on_embedding_failure: bool = False
    collect_exact_violations: bool = False
    native: bool = True


def extract_part_subgraphs(graph: nx.Graph, partition) -> dict:
    """Concrete induced subgraphs of every part, in one pass over *graph*.

    The seed examined each part through ``graph.subgraph(nodes)`` views,
    paying a parent-dict filter on every adjacency access, node scan,
    and edge count -- multiplied across BFS, the LR embedding's DFS
    sweeps, the Euler tour, and interval enumeration.  This builds all
    parts' subgraphs in a single O(n + m) sweep instead.

    The copies share the parent's node/edge data dicts (exactly the
    view's semantics) and preserve the *view's* node and per-row
    adjacency iteration order -- each part is materialized by walking
    its view exactly once (networkx filter atlases choose between
    parent-order and filter-set-order iteration depending on relative
    sizes, so only the view itself is an authoritative order source).
    Every order-sensitive consumer -- most importantly the LR embedding,
    whose rotation system drives the corner labels and therefore the
    sampled intervals -- then sees the same sequence it would through
    the view and produces identical output, while all subsequent passes
    (BFS, DFS sweeps, Euler tour, edge counts) run on concrete dicts.

    Returns a mapping ``pid -> networkx.Graph``.
    """
    node_data = graph._node
    subs: dict = {}
    for pid, part in partition.parts.items():
        view = graph.subgraph(part.nodes)
        sub = nx.Graph()
        node_store = sub._node
        adj_store = sub._adj
        view_adj = view._adj
        for u in view:
            node_store[u] = node_data[u]
            adj_store[u] = dict(view_adj[u])
        subs[pid] = sub
    return subs


def sample_size(n_total: int, config: Stage2Config) -> int:
    """The paper's ``s = Theta(log n / epsilon)`` with n = |V(G)|."""
    return max(
        1,
        int(
            math.ceil(
                config.sample_constant * math.log2(max(n_total, 2)) / config.epsilon
            )
        ),
    )


def test_part(
    graph: nx.Graph,
    part: Part,
    n_total: int,
    rng: random.Random,
    config: Stage2Config,
    ledger: Optional[RoundLedger] = None,
    cost_model: Optional[TreeCostModel] = None,
    subgraph: Optional[nx.Graph] = None,
) -> PartVerdict:
    """Run Stage II on one part; return its verdict.

    *graph* is the full graph; the part's induced subgraph is examined.
    *subgraph* may supply a pre-extracted concrete copy of that induced
    subgraph (same node/adjacency iteration order as the view -- see
    :func:`extract_part_subgraphs`); the default view keeps every
    adjacency access filtering through the parent graph.
    """
    model = cost_model or TreeCostModel()
    local = RoundLedger()
    sub = graph.subgraph(part.nodes) if subgraph is None else subgraph
    n, m = sub.number_of_nodes(), sub.number_of_edges()

    # 1. BFS tree + counts (Section 2.2.1).
    parents, depths = deterministic_bfs_tree(sub, part.root)
    depth = max(depths.values(), default=0)
    local.charge(depth + 1, "stage2.bfs", f"BFS tree of depth {depth}")
    local.charge(
        model.convergecast(depth, 2) + model.broadcast(depth, 2),
        "stage2.counts",
        "aggregate and redistribute n(Gj), m(Gj)",
    )

    def verdict(accepted, reason, embedding_planar, sampled, violating):
        if ledger is not None:
            ledger.merge(local)
        return PartVerdict(
            pid=part.pid,
            accepted=accepted,
            reason=reason,
            n=n,
            m=m,
            non_tree_edges=max(0, m - (n - 1)),
            bfs_depth=depth,
            embedding_planar=embedding_planar,
            sampled=sampled,
            violating_exact=violating,
            rounds=local.total,
        )

    # 2. Density check.
    if n > 2 and m > 3 * n - 6:
        return verdict(False, "density", False, 0, None)

    # 3. Embedding (GH in the paper; LR here, GH round cost charged).
    diameter_bound = max(1, 2 * depth)
    local.charge(
        diameter_bound + min(math.ceil(math.log2(max(n, 2))), diameter_bound),
        "stage2.embedding",
        f"planar embedding, D<={diameter_bound} (Ghaffari-Haeupler bound)",
    )
    lr = check_planarity(sub)
    if lr.is_planar:
        rotation = lr.embedding
        embedding_planar = True
    else:
        if config.reject_on_embedding_failure:
            return verdict(False, "embedding", False, 0, None)
        rotation = identity_rotation(sub)
        embedding_planar = False

    # 4. Labels: corner positions on the tree's Euler tour (default) or
    # the paper-literal preorder ranks.
    if config.criterion == "corner":
        positions, universe = euler_tour_positions(sub, part.root, rotation, parents)
        intervals_full = corner_intervals(sub, parents, positions)
    elif config.criterion == "preorder":
        ranks = embedding_ranks(sub, part.root, rotation, parents)
        intervals_full = non_tree_intervals(sub, parents, ranks)
        universe = n
    else:
        raise ValueError(f"unknown criterion {config.criterion!r}")
    label_words = max_label_length(depths)
    local.charge(
        model.broadcast(depth, max(1, label_words)),
        "stage2.labels",
        f"distribute labels of <= {label_words} words",
    )
    intervals = [(a, b) for (a, b, _u, _v) in intervals_full]

    mask = (
        violating_mask(intervals, universe=universe)
        if config.collect_exact_violations
        else None
    )
    violating = sum(mask) if mask is not None else None

    # 5. Sampling-based detection (the native pipeline resolves sampled
    # interlacements via the Fenwick sweep -- reusing the analysis
    # mask when it was already computed; identical outcomes).
    s = sample_size(n_total, config)
    outcome = sample_and_detect(
        intervals,
        s,
        rng,
        universe=universe if config.native else None,
        mask=mask if config.native else None,
    )
    label_cost = max(1, 2 * label_words)
    local.charge(
        model.convergecast(depth, max(1, outcome.sampled))
        + model.broadcast(depth, max(1, outcome.sampled * label_cost)),
        "stage2.sampling",
        f"gather + broadcast {outcome.sampled} sampled edge labels",
    )
    if outcome.detected:
        return verdict(False, "violation", embedding_planar, outcome.sampled, violating)
    return verdict(True, None, embedding_planar, outcome.sampled, violating)
