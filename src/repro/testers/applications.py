"""Corollary 16: testing cycle-freeness and bipartiteness on minor-free
graphs.

Both testers first partition the graph (deterministically per Theorem 3,
or randomized per Theorem 4) with the edge-cut target set below
``epsilon * m``, then verify the property inside every part with a BFS
tree:

* cycle-freeness: any non-tree edge closes a cycle;
* bipartiteness: any non-tree edge joining equal BFS parities closes an
  odd cycle.

Soundness: when G is epsilon-far from the property, removing the
<= ``epsilon m / 2`` cut edges cannot make it close, so some part still
violates the property, and the BFS check finds a witness
deterministically.  Completeness is immediate (the checks only fire on
genuine witnesses), so the deterministic variant errs on *no* input
satisfying the minor-free promise, and the randomized variant fails only
when the partition misses its cut target (probability <= delta).
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

import networkx as nx

from ..congest.ledger import TreeCostModel
from ..graphs.utils import require_simple
from ..partition.stage1 import Stage1Result, partition_stage1
from ..partition.weighted_selection import partition_randomized
from .labels import deterministic_bfs_tree
from .results import ApplicationTestResult


def _partition_for_application(
    graph: nx.Graph,
    epsilon: float,
    alpha: int,
    method: str,
    delta: float,
    seed: Optional[int],
    engine: Optional[str],
) -> Stage1Result:
    target = epsilon * graph.number_of_edges() / 2
    if method == "deterministic":
        return partition_stage1(
            graph, epsilon=epsilon, alpha=alpha, target_cut=target, engine=engine
        )
    if method == "randomized":
        return partition_randomized(
            graph,
            epsilon=epsilon,
            delta=delta,
            alpha=alpha,
            target_cut=target,
            seed=seed,
            engine=engine,
        )
    raise ValueError(f"unknown method {method!r}")


def _verify_parts(
    graph: nx.Graph,
    stage1: Stage1Result,
    check: str,
) -> Tuple[List[Any], int]:
    """BFS verification in every part; returns (rejecting pids, max rounds)."""
    model = TreeCostModel()
    rejecting: List[Any] = []
    max_rounds = 0
    for pid, part in stage1.partition.parts.items():
        sub = graph.subgraph(part.nodes)
        parents, depths = deterministic_bfs_tree(sub, part.root)
        depth = max(depths.values(), default=0)
        # BFS + one (depth, parent) exchange round, as in the simulated
        # per-part check programs.
        rounds = (depth + 1) + model.neighbor_exchange()
        max_rounds = max(max_rounds, rounds)
        bad = False
        for u, v in sub.edges():
            if parents.get(u) == v or parents.get(v) == u:
                continue
            if check == "cycle":
                bad = True
                break
            if check == "bipartite" and depths[u] % 2 == depths[v] % 2:
                bad = True
                break
        if bad:
            rejecting.append(pid)
    return rejecting, max_rounds


def _verify_parts_dense(stage1: Stage1Result, check: str) -> Tuple[List[Any], int]:
    """The per-part BFS verification on the dense partition state.

    One multi-source BFS from every part root over the intra-part edge
    arrays replaces the per-part ``graph.subgraph`` + BFS walk, and the
    non-tree / parity predicates evaluate vectorized over all intra-part
    edges at once.  Equivalence with :func:`_verify_parts`: dense
    indices sort like the original non-negative int ids (certified by
    ``dense_supported``), so the min-index parent at depth ``d - 1``
    is exactly ``deterministic_bfs_tree``'s min-``id_key`` parent, and
    the per-part verdicts -- hence the rejecting root set and the round
    maximum -- match the legacy walk bit for bit.
    """
    import numpy as np

    state = stage1.dense_state
    topology = state.topology
    n = topology.n
    ids = topology.nodes
    part_of = state.part_of
    intra = part_of[state.eu] == part_of[state.ev]
    ieu = state.eu[intra]
    iev = state.ev[intra]

    roots = np.fromiter(
        state.heights.keys(), dtype=np.int64, count=len(state.heights)
    )
    depth = np.full(n, -1, dtype=np.int64)
    depth[roots] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[roots] = True
    level = 0
    while True:
        level += 1
        hit = np.zeros(n, dtype=bool)
        hit[iev[frontier[ieu]]] = True
        hit[ieu[frontier[iev]]] = True
        new = hit & (depth < 0)
        if not new.any():
            break
        depth[new] = level
        frontier = new

    model = TreeCostModel()
    max_rounds = (int(depth.max()) + 1) + model.neighbor_exchange()

    # BFS parent per non-root node: minimum intra-part neighbor one
    # level up (min dense index == min id under the dense-support
    # certificate).
    parent = np.full(n, n, dtype=np.int64)
    du = depth[ieu]
    dv = depth[iev]
    up = dv == du + 1
    np.minimum.at(parent, iev[up], ieu[up])
    down = du == dv + 1
    np.minimum.at(parent, ieu[down], iev[down])

    nontree = (parent[iev] != ieu) & (parent[ieu] != iev)
    if check == "cycle":
        bad = nontree
    else:
        bad = nontree & (du % 2 == dv % 2)
    rejecting_roots = np.unique(part_of[ieu[bad]])
    return [ids[r] for r in rejecting_roots.tolist()], max_rounds


def _run_application(
    graph: nx.Graph,
    epsilon: float,
    check: str,
    alpha: int,
    method: str,
    delta: float,
    seed: Optional[int],
    engine: Optional[str] = None,
) -> ApplicationTestResult:
    require_simple(graph)
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    stage1 = _partition_for_application(
        graph, epsilon, alpha, method, delta, seed, engine
    )
    if stage1.dense_state is not None:
        rejecting, verify_rounds = _verify_parts_dense(stage1, check)
    else:
        rejecting, verify_rounds = _verify_parts(graph, stage1, check)
    return ApplicationTestResult(
        accepted=not rejecting,
        rejecting_parts=tuple(sorted(rejecting, key=repr)),
        partition_result=stage1,
        partition_rounds=stage1.rounds,
        verification_rounds=verify_rounds,
    )


def test_cycle_freeness(
    graph: nx.Graph,
    epsilon: float = 0.1,
    alpha: int = 3,
    method: str = "deterministic",
    delta: float = 0.1,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
) -> ApplicationTestResult:
    """Corollary 16 cycle-freeness tester (minor-free promise).

    Deterministic method: ``O(poly(1/eps) log n)`` rounds, never errs on
    promise-satisfying inputs.  Randomized method: ``O(poly(1/eps)
    (log 1/delta + log* n))`` rounds, success probability >= 1 - delta.
    ``engine`` selects the partition + verification engine
    (``auto``/``dense``/``legacy``; identical verdicts either way).
    """
    return _run_application(
        graph, epsilon, "cycle", alpha, method, delta, seed, engine
    )


def test_bipartiteness(
    graph: nx.Graph,
    epsilon: float = 0.1,
    alpha: int = 3,
    method: str = "deterministic",
    delta: float = 0.1,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
) -> ApplicationTestResult:
    """Corollary 16 bipartiteness tester (minor-free promise)."""
    return _run_application(
        graph, epsilon, "bipartite", alpha, method, delta, seed, engine
    )
