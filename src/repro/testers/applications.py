"""Corollary 16: testing cycle-freeness and bipartiteness on minor-free
graphs.

Both testers first partition the graph (deterministically per Theorem 3,
or randomized per Theorem 4) with the edge-cut target set below
``epsilon * m``, then verify the property inside every part with a BFS
tree:

* cycle-freeness: any non-tree edge closes a cycle;
* bipartiteness: any non-tree edge joining equal BFS parities closes an
  odd cycle.

Soundness: when G is epsilon-far from the property, removing the
<= ``epsilon m / 2`` cut edges cannot make it close, so some part still
violates the property, and the BFS check finds a witness
deterministically.  Completeness is immediate (the checks only fire on
genuine witnesses), so the deterministic variant errs on *no* input
satisfying the minor-free promise, and the randomized variant fails only
when the partition misses its cut target (probability <= delta).
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

import networkx as nx

from ..congest.ledger import TreeCostModel
from ..graphs.utils import require_simple
from ..partition.stage1 import Stage1Result, partition_stage1
from ..partition.weighted_selection import partition_randomized
from .labels import deterministic_bfs_tree
from .results import ApplicationTestResult


def _partition_for_application(
    graph: nx.Graph,
    epsilon: float,
    alpha: int,
    method: str,
    delta: float,
    seed: Optional[int],
) -> Stage1Result:
    target = epsilon * graph.number_of_edges() / 2
    if method == "deterministic":
        return partition_stage1(
            graph, epsilon=epsilon, alpha=alpha, target_cut=target
        )
    if method == "randomized":
        return partition_randomized(
            graph,
            epsilon=epsilon,
            delta=delta,
            alpha=alpha,
            target_cut=target,
            seed=seed,
        )
    raise ValueError(f"unknown method {method!r}")


def _verify_parts(
    graph: nx.Graph,
    stage1: Stage1Result,
    check: str,
) -> Tuple[List[Any], int]:
    """BFS verification in every part; returns (rejecting pids, max rounds)."""
    model = TreeCostModel()
    rejecting: List[Any] = []
    max_rounds = 0
    for pid, part in stage1.partition.parts.items():
        sub = graph.subgraph(part.nodes)
        parents, depths = deterministic_bfs_tree(sub, part.root)
        depth = max(depths.values(), default=0)
        # BFS + one (depth, parent) exchange round, as in the simulated
        # per-part check programs.
        rounds = (depth + 1) + model.neighbor_exchange()
        max_rounds = max(max_rounds, rounds)
        bad = False
        for u, v in sub.edges():
            if parents.get(u) == v or parents.get(v) == u:
                continue
            if check == "cycle":
                bad = True
                break
            if check == "bipartite" and depths[u] % 2 == depths[v] % 2:
                bad = True
                break
        if bad:
            rejecting.append(pid)
    return rejecting, max_rounds


def _run_application(
    graph: nx.Graph,
    epsilon: float,
    check: str,
    alpha: int,
    method: str,
    delta: float,
    seed: Optional[int],
) -> ApplicationTestResult:
    require_simple(graph)
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    stage1 = _partition_for_application(graph, epsilon, alpha, method, delta, seed)
    rejecting, verify_rounds = _verify_parts(graph, stage1, check)
    return ApplicationTestResult(
        accepted=not rejecting,
        rejecting_parts=tuple(sorted(rejecting, key=repr)),
        partition_result=stage1,
        partition_rounds=stage1.rounds,
        verification_rounds=verify_rounds,
    )


def test_cycle_freeness(
    graph: nx.Graph,
    epsilon: float = 0.1,
    alpha: int = 3,
    method: str = "deterministic",
    delta: float = 0.1,
    seed: Optional[int] = None,
) -> ApplicationTestResult:
    """Corollary 16 cycle-freeness tester (minor-free promise).

    Deterministic method: ``O(poly(1/eps) log n)`` rounds, never errs on
    promise-satisfying inputs.  Randomized method: ``O(poly(1/eps)
    (log 1/delta + log* n))`` rounds, success probability >= 1 - delta.
    """
    return _run_application(graph, epsilon, "cycle", alpha, method, delta, seed)


def test_bipartiteness(
    graph: nx.Graph,
    epsilon: float = 0.1,
    alpha: int = 3,
    method: str = "deterministic",
    delta: float = 0.1,
    seed: Optional[int] = None,
) -> ApplicationTestResult:
    """Corollary 16 bipartiteness tester (minor-free promise)."""
    return _run_application(graph, epsilon, "bipartite", alpha, method, delta, seed)
