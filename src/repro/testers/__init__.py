"""Distributed property testers: planarity (Thm 1) and applications (Cor 16)."""

from .applications import test_bipartiteness, test_cycle_freeness
from .hereditary import (
    BUILTIN_CHECKERS,
    HereditaryTestResult,
    bipartiteness_checker,
    cycle_freeness_checker,
    degeneracy_checker,
    outerplanarity_checker,
    planarity_checker,
    test_hereditary_property,
)
from .labels import (
    children_in_rotation_order,
    deterministic_bfs_tree,
    embedding_ranks,
    max_label_length,
    non_tree_intervals,
)
from .planarity import PlanarityTestConfig, test_planarity
from .results import ApplicationTestResult, PartVerdict, PlanarityTestResult
from .stage2 import Stage2Config, sample_size, test_part
from .violations import (
    SamplingOutcome,
    count_violating,
    edges_interlace,
    find_any_interlacement,
    sample_and_detect,
    violating_mask,
    violating_mask_bruteforce,
)

__all__ = [
    "ApplicationTestResult",
    "BUILTIN_CHECKERS",
    "HereditaryTestResult",
    "PartVerdict",
    "PlanarityTestConfig",
    "PlanarityTestResult",
    "SamplingOutcome",
    "Stage2Config",
    "children_in_rotation_order",
    "count_violating",
    "deterministic_bfs_tree",
    "edges_interlace",
    "embedding_ranks",
    "find_any_interlacement",
    "max_label_length",
    "non_tree_intervals",
    "sample_and_detect",
    "sample_size",
    "bipartiteness_checker",
    "cycle_freeness_checker",
    "degeneracy_checker",
    "outerplanarity_checker",
    "planarity_checker",
    "test_bipartiteness",
    "test_cycle_freeness",
    "test_part",
    "test_hereditary_property",
    "test_planarity",
    "violating_mask",
    "violating_mask_bruteforce",
]
