"""Small self-contained data structures used across the library.

Currently:

* :class:`DisjointSets` -- union-find with path compression and union by
  size, used by the contraction steps of Stage I and by graph utilities.
* :class:`FenwickTree` -- a binary indexed tree over integer positions,
  used for the O((n + m) log m) interlacement sweep in
  :mod:`repro.testers.violations`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List


class DisjointSets:
    """Union-find over arbitrary hashable elements.

    Elements are added lazily on first use.  ``find`` uses path compression
    and ``union`` uses union by size, giving effectively-constant amortized
    operations.
    """

    def __init__(self, elements: Iterable[Hashable] = ()):  # noqa: D107
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register *element* as a singleton set if it is new."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s set."""
        self.add(element)
        root = element
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets containing *a* and *b*; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return True when *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Return a mapping from set representative to member list."""
        out: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            out.setdefault(self.find(element), []).append(element)
        return out

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)


class FenwickTree:
    """Binary indexed tree supporting point updates and prefix sums.

    Positions are 0-based integers in ``[0, size)``.
    """

    def __init__(self, size: int):  # noqa: D107
        if size < 0:
            raise ValueError("FenwickTree size must be non-negative")
        self._size = size
        self._tree = [0] * (size + 1)

    @property
    def size(self) -> int:
        """Number of addressable positions."""
        return self._size

    def add(self, index: int, delta: int = 1) -> None:
        """Add *delta* at *index*."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        i = index + 1
        tree = self._tree
        while i <= self._size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Return the sum of values at positions ``0 .. index`` inclusive.

        ``index = -1`` yields 0; indices beyond the end are clamped.
        """
        i = min(index, self._size - 1) + 1
        total = 0
        tree = self._tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Return the sum of values at positions ``lo .. hi`` inclusive."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def total(self) -> int:
        """Return the sum of all values."""
        return self.prefix_sum(self._size - 1)
