"""Graph utilities: girth, diameter, arboricity bounds, relabeling.

Pure-Python implementations on adjacency dictionaries; ``networkx`` graphs
are accepted everywhere.  These are substrate utilities used by the
generators, the farness certification, and the experiment harness.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from ..errors import GraphInputError


def id_key(node: Any):
    """Canonical total order on node ids.

    Integers compare numerically (the CONGEST convention: ids are
    O(log n)-bit integers and tie-breaks such as the forest-decomposition
    orientation use numeric order); any other id types are ordered by
    their repr, after all integers.  The emulated layer and the
    message-passing protocols must use the *same* order so cross-layer
    tests can compare their outputs exactly.
    """
    if isinstance(node, bool) or not isinstance(node, int):
        return (1, repr(node))
    return (0, node)


def require_simple(graph: nx.Graph, name: str = "graph") -> None:
    """Raise :class:`GraphInputError` unless *graph* is simple undirected."""
    if graph.is_directed() or graph.is_multigraph():
        raise GraphInputError(f"{name} must be a simple undirected graph")
    if any(u == v for u, v in graph.edges()):
        raise GraphInputError(f"{name} must not contain self-loops")


def ensure_int_labels(graph: nx.Graph) -> Tuple[nx.Graph, Dict[Any, int]]:
    """Relabel nodes to ``0..n-1`` (sorted by repr); return (graph, mapping)."""
    mapping = {v: i for i, v in enumerate(sorted(graph.nodes(), key=repr))}
    return nx.relabel_nodes(graph, mapping, copy=True), mapping


def bfs_levels(adj: Dict[Any, Iterable[Any]], source: Any) -> Dict[Any, int]:
    """Hop distances from *source* over an adjacency mapping."""
    depth = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = depth[v]
        for w in adj[v]:
            if w not in depth:
                depth[w] = dv + 1
                queue.append(w)
    return depth


def eccentricity(graph: nx.Graph, source: Any) -> int:
    """Eccentricity of *source* (graph must be connected)."""
    depth = bfs_levels(graph.adj, source)
    if len(depth) != graph.number_of_nodes():
        raise GraphInputError("eccentricity requires a connected graph")
    return max(depth.values())


def diameter(graph: nx.Graph, exact_threshold: int = 1200) -> int:
    """Diameter of a connected graph.

    Exact (all-sources BFS) for graphs up to *exact_threshold* nodes;
    beyond that a double-sweep lower bound is returned, which is exact on
    trees and a 2-approximation in general (documented: used only for
    reporting on very large instances).
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphInputError("diameter of the empty graph is undefined")
    if n == 1:
        return 0
    nodes = list(graph.nodes())
    if n <= exact_threshold:
        return max(max(bfs_levels(graph.adj, v).values()) for v in nodes)
    depth = bfs_levels(graph.adj, nodes[0])
    if len(depth) != n:
        raise GraphInputError("diameter requires a connected graph")
    far = max(depth, key=depth.get)
    depth2 = bfs_levels(graph.adj, far)
    return max(depth2.values())


def tree_height(parents: Dict[Any, Any], root: Any) -> int:
    """Height of a tree given as child -> parent pointers."""
    children: Dict[Any, List[Any]] = {}
    for child, parent in parents.items():
        children.setdefault(parent, []).append(child)
    height = 0
    frontier = [root]
    seen = {root}
    while frontier:
        nxt: List[Any] = []
        for v in frontier:
            for c in children.get(v, ()):
                if c in seen:
                    raise GraphInputError("parent pointers contain a cycle")
                seen.add(c)
                nxt.append(c)
        if nxt:
            height += 1
        frontier = nxt
    return height


def find_short_cycle(graph: nx.Graph, max_length: int) -> Optional[List[Any]]:
    """Find a cycle of length at most *max_length*, or None.

    Runs truncated BFS from every node: a cycle of length L passes within
    hop distance ``ceil(L/2)`` of each of its nodes, so depth
    ``ceil(max_length / 2)`` suffices for detection.
    """
    if max_length < 3:
        return None
    limit = (max_length + 1) // 2
    adj = graph.adj
    for source in graph.nodes():
        cycle = _short_cycle_from(adj, source, limit, max_length)
        if cycle is not None:
            return cycle
    return None


def _short_cycle_from(
    adj, source: Any, depth_limit: int, max_length: int
) -> Optional[List[Any]]:
    depth = {source: 0}
    parent: Dict[Any, Any] = {source: None}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        dv = depth[v]
        if dv >= depth_limit:
            continue
        for w in adj[v]:
            if w not in depth:
                depth[w] = dv + 1
                parent[w] = v
                queue.append(w)
            elif parent[v] != w and parent.get(w) != v:
                # Non-tree edge: extract the cycle through the meet point.
                cycle = _extract_cycle(parent, depth, v, w)
                if cycle is not None and len(cycle) <= max_length:
                    return cycle
    return None


def _extract_cycle(parent, depth, x: Any, y: Any) -> Optional[List[Any]]:
    """Cycle formed by tree paths from x and y to their meeting ancestor."""
    px, py = [x], [y]
    a, b = x, y
    while depth[a] > depth[b]:
        a = parent[a]
        px.append(a)
    while depth[b] > depth[a]:
        b = parent[b]
        py.append(b)
    while a != b:
        a = parent[a]
        b = parent[b]
        px.append(a)
        py.append(b)
    # px ends at the common ancestor a == b; py likewise.
    cycle = px + py[-2::-1]
    if len(cycle) < 3:
        return None
    return cycle


def girth(graph: nx.Graph, upper_bound: Optional[int] = None) -> float:
    """Exact girth (length of shortest cycle), ``inf`` for forests.

    BFS from every node; ``upper_bound`` (when given) allows early exit as
    soon as a cycle of at most that length is found.
    """
    best = math.inf
    adj = graph.adj
    n = graph.number_of_nodes()
    for source in graph.nodes():
        best_here = _shortest_cycle_through(adj, source, best)
        best = min(best, best_here)
        if upper_bound is not None and best <= upper_bound:
            return best
        if best == 3:
            return 3
    return best


def _shortest_cycle_through(adj, source: Any, best: float) -> float:
    depth = {source: 0}
    parent = {source: None}
    queue = deque([source])
    local_best = best
    while queue:
        v = queue.popleft()
        dv = depth[v]
        if 2 * dv + 1 >= local_best:
            break
        for w in adj[v]:
            if w not in depth:
                depth[w] = dv + 1
                parent[w] = v
                queue.append(w)
            elif parent[v] != w:
                length = dv + depth[w] + 1
                if length < local_best:
                    local_best = length
    return local_best


def degeneracy(graph: nx.Graph) -> int:
    """Degeneracy (max over the core decomposition); 0 for edgeless graphs."""
    if graph.number_of_edges() == 0:
        return 0
    degrees = dict(graph.degree())
    buckets: Dict[int, Set[Any]] = {}
    for v, d in degrees.items():
        buckets.setdefault(d, set()).add(v)
    removed: Set[Any] = set()
    result = 0
    n = graph.number_of_nodes()
    current = 0
    for _ in range(n):
        while current not in buckets or not buckets[current]:
            current += 1
        v = buckets[current].pop()
        removed.add(v)
        result = max(result, current)
        for w in graph.adj[v]:
            if w in removed:
                continue
            d = degrees[w]
            buckets[d].discard(w)
            degrees[w] = d - 1
            buckets.setdefault(d - 1, set()).add(w)
        current = max(0, current - 1)
    return result


def greedy_forest_partition(graph: nx.Graph) -> List[List[Tuple[Any, Any]]]:
    """Partition the edges into forests greedily (arboricity upper bound).

    Uses the degeneracy order: orienting each edge toward the earlier node
    in the order gives out-degree at most the degeneracy, and each node's
    k-th out-edge goes to the k-th forest; the result is a valid forest
    decomposition into at most ``degeneracy`` forests.
    """
    order = _degeneracy_order(graph)
    rank = {v: i for i, v in enumerate(order)}
    out_count: Dict[Any, int] = {v: 0 for v in graph.nodes()}
    forests: List[List[Tuple[Any, Any]]] = []
    for u, v in graph.edges():
        # orient from the later node toward the earlier node in the order
        tail, head = (u, v) if rank[u] > rank[v] else (v, u)
        index = out_count[tail]
        out_count[tail] += 1
        while len(forests) <= index:
            forests.append([])
        forests[index].append((tail, head))
    return forests


def _degeneracy_order(graph: nx.Graph) -> List[Any]:
    degrees = dict(graph.degree())
    buckets: Dict[int, Set[Any]] = {}
    for v, d in degrees.items():
        buckets.setdefault(d, set()).add(v)
    removed: Set[Any] = set()
    order: List[Any] = []
    current = 0
    for _ in range(graph.number_of_nodes()):
        while current not in buckets or not buckets[current]:
            current += 1
        v = buckets[current].pop()
        removed.add(v)
        order.append(v)
        for w in graph.adj[v]:
            if w in removed:
                continue
            d = degrees[w]
            buckets[d].discard(w)
            degrees[w] = d - 1
            buckets.setdefault(d - 1, set()).add(w)
        current = max(0, current - 1)
    return order


def arboricity_bounds(graph: nx.Graph) -> Tuple[int, int]:
    """(lower, upper) bounds on the Nash-Williams arboricity.

    Lower bound: ``max ceil(m_H / (n_H - 1))`` over the whole graph and all
    cores of the degeneracy decomposition.  Upper bound: the size of the
    greedy forest partition (at most the degeneracy).
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if m == 0:
        return (0, 0)
    lower = max(1, math.ceil(m / max(1, n - 1)))
    # Cores give denser subgraphs: the k-core has min degree k, hence
    # m_core >= k * n_core / 2.
    core = nx.core_number(graph)
    for k in sorted(set(core.values()), reverse=True):
        nodes = [v for v, c in core.items() if c >= k]
        if len(nodes) < 2:
            continue
        sub = graph.subgraph(nodes)
        lower = max(lower, math.ceil(sub.number_of_edges() / (len(nodes) - 1)))
    upper = max(lower, len(greedy_forest_partition(graph)))
    return (lower, upper)
