"""The Section 3 lower-bound construction (Theorem 2, Claims 11 & 12).

The paper proves an ``Omega(log n)`` round lower bound for one-sided
testing of H-minor freeness via graphs that are (a) far from
``K_k``-minor freeness yet (b) contain no cycle shorter than
``log(n) / c``: within fewer than ``girth/2 - 1`` rounds, every node's
view is a tree, which is consistent with a planar (indeed cycle-free)
graph, so a one-sided tester must accept.

The construction samples ``G(n, p)`` and removes one edge from every
short cycle.  Claim 11 uses ``p = 1000 k^2 / n``; at laptop scale that
constant makes the graph nearly complete, so the generator exposes the
expected average degree directly and *certifies* the resulting farness a
posteriori via the girth-refined Euler bound (DESIGN.md, substitution 3):
a graph with girth ``g`` needs ``m <= g (n - 2)/(g - 2)`` to be planar,
so high-girth graphs with ``m = cn/2`` for ``c > 2`` have skewness
``~ (1 - 2/c) m``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

import networkx as nx

from ..errors import GraphInputError
from .distance import planarity_farness_lower_bound
from .utils import bfs_levels, find_short_cycle, girth


@dataclass
class LowerBoundInstance:
    """A hard instance for one-sided minor-freeness testing.

    Attributes:
        graph: the final high-girth graph.
        girth: its exact girth (``inf`` if the surgery left a forest).
        target_girth: every shorter cycle was removed by surgery.
        removed_edges: how many edges the girth surgery deleted.
        farness_lower_bound: certified farness-from-planarity fraction.
        indistinguishability_radius: rounds for which every node's view
            is a tree.  An induced radius-r ball is acyclic iff the girth
            is at least ``2r + 2`` (a cycle of length L lies entirely
            within distance ``floor(L/2)`` of each of its nodes), so the
            radius is ``(girth - 2) // 2``.
    """

    graph: nx.Graph
    girth: float
    target_girth: int
    removed_edges: int
    farness_lower_bound: float

    @property
    def indistinguishability_radius(self) -> int:
        if self.girth == float("inf"):
            return self.graph.number_of_nodes()
        return max(0, (int(self.girth) - 2) // 2)


def lower_bound_instance(
    n: int,
    average_degree: float = 8.0,
    target_girth: Optional[int] = None,
    seed: Optional[int] = None,
) -> LowerBoundInstance:
    """Sample the Theorem 2 construction.

    Args:
        n: number of nodes.
        average_degree: expected average degree ``c`` of the initial
            ``G(n, c/n)`` sample; farness after surgery is roughly
            ``1 - 2/c``, so values of 6-12 give strongly far instances.
        target_girth: cycles strictly shorter than this are destroyed.
            Defaults to ``max(4, floor(log2(n) / 2))`` -- logarithmic in n,
            mirroring the ``log(n)/c(k)`` of Claim 12, with a constant
            small enough that surgery removes an o(1) edge fraction.
        seed: RNG seed.
    """
    if n < 16:
        raise GraphInputError("lower_bound_instance needs n >= 16")
    if target_girth is None:
        target_girth = max(4, int(math.log2(n) / 2))
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(n, average_degree / n, seed=rng.randrange(2**31))
    removed = _girth_surgery(graph, target_girth, rng)
    final_girth = girth(graph)
    return LowerBoundInstance(
        graph=graph,
        girth=final_girth,
        target_girth=target_girth,
        removed_edges=removed,
        farness_lower_bound=planarity_farness_lower_bound(graph),
    )


def _girth_surgery(graph: nx.Graph, target_girth: int, rng: random.Random) -> int:
    """Remove one random edge from every cycle shorter than *target_girth*."""
    removed = 0
    while True:
        cycle = find_short_cycle(graph, target_girth - 1)
        if cycle is None:
            return removed
        index = rng.randrange(len(cycle))
        u, v = cycle[index], cycle[(index + 1) % len(cycle)]
        graph.remove_edge(u, v)
        removed += 1


def view_is_tree(graph: nx.Graph, node, radius: int) -> bool:
    """True when the radius-*radius* ball around *node* is acyclic.

    This is the indistinguishability predicate behind Theorem 2: an
    ``r``-round (deterministic or one-sided randomized) algorithm's output
    at a node is a function of its radius-``r`` view; if that view is a
    tree it also occurs in some forest, and on forests (which are planar)
    a one-sided tester must accept.
    """
    depths = bfs_levels(graph.adj, node)
    ball = {v for v, d in depths.items() if d <= radius}
    sub = graph.subgraph(ball)
    return sub.number_of_edges() == (
        sub.number_of_nodes() - nx.number_connected_components(sub)
    )


def all_views_are_trees(graph: nx.Graph, radius: int) -> bool:
    """True when every node's radius-*radius* view is a tree.

    Equivalent to ``girth > 2 * radius + 1``; checked directly on the
    balls for experiment transparency (and as a cross-check of the girth
    computation in tests).
    """
    return all(view_is_tree(graph, v, radius) for v in graph.nodes())
