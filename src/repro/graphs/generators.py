"""Planar and minor-free graph families used throughout the reproduction.

Every generator returns a **connected simple graph with integer labels**
``0..n-1`` so the CONGEST programs (which use ids as initial colors) work
unchanged.  Families:

* grids and triangulated grids (minor-free workhorses; triangulated grids
  are additionally far from cycle-free and far from bipartite -- the
  Corollary 16 workloads);
* random Apollonian networks (random maximal planar graphs);
* random planar graphs of a target density (Apollonian + random deletion);
* Delaunay triangulations of random points (scipy);
* random maximal outerplanar graphs (K4-minor-free);
* random trees.
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from ..errors import GraphInputError


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """The rows x cols grid, relabeled to integers (planar, bipartite)."""
    if rows < 1 or cols < 1:
        raise GraphInputError("grid dimensions must be positive")
    return nx.convert_node_labels_to_integers(nx.grid_2d_graph(rows, cols))

def triangulated_grid(rows: int, cols: int) -> nx.Graph:
    """Grid plus one diagonal per cell: planar, 2/3 of edges in triangles.

    Far from cycle-free (a spanning forest keeps only ~ n of ~ 3n edges)
    and far from bipartite (edge-disjoint triangles), yet planar -- the
    canonical Corollary 16 "far" workload under the minor-free promise.
    """
    if rows < 2 or cols < 2:
        raise GraphInputError("triangulated grid needs at least 2x2 nodes")
    base = nx.grid_2d_graph(rows, cols)
    for r in range(rows - 1):
        for c in range(cols - 1):
            base.add_edge((r, c), (r + 1, c + 1))
    return nx.convert_node_labels_to_integers(base)


def random_apollonian(n: int, seed: Optional[int] = None) -> nx.Graph:
    """Random Apollonian network: a random maximal planar graph.

    Start from a triangle; repeatedly choose a random (inner) face and
    insert a new node adjacent to its three corners.  The result has
    exactly ``3n - 6`` edges and is maximally planar.
    """
    if n < 3:
        raise GraphInputError("Apollonian networks need n >= 3")
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (0, 2)])
    faces = [(0, 1, 2)]
    for new in range(3, n):
        index = rng.randrange(len(faces))
        a, b, c = faces[index]
        graph.add_edges_from([(new, a), (new, b), (new, c)])
        faces[index] = (a, b, new)
        faces.append((a, c, new))
        faces.append((b, c, new))
    return graph


def random_planar(
    n: int,
    m: Optional[int] = None,
    seed: Optional[int] = None,
) -> nx.Graph:
    """Connected random planar graph with ``n`` nodes and ``~m`` edges.

    Builds a random Apollonian network and deletes random non-bridge
    edges until the target edge count (default ``2n``) is reached.
    """
    if n < 3:
        raise GraphInputError("random_planar needs n >= 3")
    target_m = min(2 * n, 3 * n - 6) if m is None else m
    if target_m < n - 1 or target_m > 3 * n - 6:
        raise GraphInputError(
            f"target edge count {target_m} outside [{n - 1}, {3 * n - 6}]"
        )
    rng = _rng(seed)
    graph = random_apollonian(n, seed=rng.randrange(2**31))
    edges = list(graph.edges())
    rng.shuffle(edges)
    for u, v in edges:
        if graph.number_of_edges() <= target_m:
            break
        graph.remove_edge(u, v)
        # Keep the graph connected: re-add bridges.
        if not _still_connected_locally(graph, u, v):
            graph.add_edge(u, v)
    return graph


def _still_connected_locally(graph: nx.Graph, u, v) -> bool:
    """True if u and v remain connected after removing edge (u, v)."""
    # BFS from u until v found (early exit keeps deletion loop fast).
    seen = {u}
    stack = [u]
    while stack:
        x = stack.pop()
        for y in graph.adj[x]:
            if y == v:
                return True
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return False


def delaunay_graph(n: int, seed: Optional[int] = None) -> nx.Graph:
    """Delaunay triangulation of ``n`` random points (planar, connected)."""
    if n < 3:
        raise GraphInputError("delaunay_graph needs n >= 3")
    import numpy as np
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    tri = Delaunay(points)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for simplex in tri.simplices:
        a, b, c = map(int, simplex)
        graph.add_edges_from([(a, b), (b, c), (a, c)])
    return graph


def random_outerplanar(
    n: int, seed: Optional[int] = None, maximal: bool = True
) -> nx.Graph:
    """Random (maximal) outerplanar graph: polygon + non-crossing chords.

    Outerplanar graphs are K4-minor-free and K23-minor-free; they exercise
    the minor-free promise with a different excluded minor than planarity.
    When ``maximal`` is False roughly half the chords are dropped.
    """
    if n < 3:
        raise GraphInputError("random_outerplanar needs n >= 3")
    rng = _rng(seed)
    graph = nx.cycle_graph(n)
    chords = []
    _triangulate_polygon(rng, 0, n - 1, chords)
    if not maximal:
        chords = [c for c in chords if rng.random() < 0.5]
    graph.add_edges_from(chords)
    return graph


def _triangulate_polygon(rng: random.Random, i: int, j: int, chords) -> None:
    """Randomly triangulate polygon vertices i..j (iterative)."""
    stack = [(i, j)]
    while stack:
        a, b = stack.pop()
        if b - a < 2:
            continue
        k = rng.randint(a + 1, b - 1)
        if k - a >= 2:
            chords.append((a, k))
            stack.append((a, k))
        if b - k >= 2:
            chords.append((k, b))
            stack.append((k, b))


def random_tree(n: int, seed: Optional[int] = None) -> nx.Graph:
    """Uniform random labeled tree (Prüfer-based)."""
    if n < 1:
        raise GraphInputError("random_tree needs n >= 1")
    if n <= 2:
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        if n == 2:
            graph.add_edge(0, 1)
        return graph
    rng = _rng(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(prufer)


PLANAR_FAMILIES = {
    "grid": lambda n, seed=None: grid_graph(_near_square(n)[0], _near_square(n)[1]),
    "tri-grid": lambda n, seed=None: triangulated_grid(*_near_square(n)),
    "apollonian": random_apollonian,
    "planar-sparse": lambda n, seed=None: random_planar(n, m=int(1.5 * n), seed=seed),
    "delaunay": delaunay_graph,
    "outerplanar": random_outerplanar,
    "tree": random_tree,
}
"""Named planar family constructors ``f(n, seed) -> nx.Graph`` used by
benchmarks and the CLI.  Grid sizes are rounded to the nearest rectangle."""


def _near_square(n: int):
    rows = max(2, int(n**0.5))
    cols = max(2, (n + rows - 1) // rows)
    return rows, cols


def make_planar(family: str, n: int, seed: Optional[int] = None) -> nx.Graph:
    """Build a named planar family member (see :data:`PLANAR_FAMILIES`)."""
    try:
        builder = PLANAR_FAMILIES[family]
    except KeyError:
        raise GraphInputError(
            f"unknown planar family {family!r}; choose from "
            f"{sorted(PLANAR_FAMILIES)}"
        ) from None
    return builder(n, seed=seed)
