"""Generators of graphs that are certifiably far from planarity.

Every generator returns ``(graph, certified_farness_lower_bound)`` where
the bound is a *proven* lower bound on the fraction of edges that must be
removed to obtain a planar graph (via Euler-formula skewness bounds or
vertex-disjoint Kuratowski subgraphs).  Benchmarks use the certificate to
assert that an instance really is epsilon-far before measuring detection,
replacing the paper's probabilistic-method constants with per-instance
certificates (DESIGN.md, substitution 3).
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Optional, Tuple

import networkx as nx

from ..errors import GraphInputError
from .distance import planarity_farness_lower_bound
from .generators import random_apollonian


def _connect(graph: nx.Graph, rng: random.Random) -> None:
    """Stitch components together with single edges (keeps graphs sparse)."""
    components = [sorted(c) for c in nx.connected_components(graph)]
    for first, second in zip(components, components[1:]):
        graph.add_edge(rng.choice(first), rng.choice(second))


def gnp_far(
    n: int,
    average_degree: float = 14.0,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, float]:
    """Connected ``G(n, c/n)``; far from planar once ``c`` exceeds ~6.

    A planar graph has at most ``3n - 6`` edges, so a graph with
    ``m ~ cn/2`` edges has skewness at least ``m - 3n + 6``; the certified
    farness is therefore roughly ``1 - 6/c``.
    """
    if n < 8:
        raise GraphInputError("gnp_far needs n >= 8")
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(n, average_degree / n, seed=rng.randrange(2**31))
    _connect(graph, rng)
    return graph, planarity_farness_lower_bound(graph)


def random_regular_far(
    n: int,
    degree: int = 10,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, float]:
    """Random d-regular graph; certified farness ~ ``1 - 6/d``.

    Bounded-degree far instances match the regime of the paper's lower
    bound discussion (Censor-Hillel et al. use bounded-degree graphs).
    """
    if degree < 7:
        raise GraphInputError("random_regular_far needs degree >= 7 to certify")
    if n * degree % 2:
        n += 1
    graph = nx.random_regular_graph(degree, n, seed=seed)
    rng = random.Random(seed)
    _connect(graph, rng)
    return graph, planarity_farness_lower_bound(graph)


def planted_kuratowski(
    n: int,
    count: Optional[int] = None,
    minor: str = "k5",
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, float]:
    """A planar base graph with *count* vertex-disjoint planted K5s/K33s.

    Each planted Kuratowski subgraph requires at least one edge removal
    (removing base edges cannot make K5/K33 planar), and the plantings are
    vertex-disjoint, so the skewness is at least *count*; the certificate
    is ``count / m``.  With ``count = Theta(n)`` the graph is
    Theta(1)-far while remaining sparse and "locally planar-looking" --
    the hard regime for the tester.
    """
    clique_size = 5 if minor == "k5" else 6
    if minor not in ("k5", "k33"):
        raise GraphInputError("minor must be 'k5' or 'k33'")
    if count is None:
        count = max(1, n // (4 * clique_size))
    if n < clique_size * count:
        raise GraphInputError(
            f"need n >= {clique_size * count} nodes for {count} plantings"
        )
    rng = random.Random(seed)
    graph = random_apollonian(n, seed=rng.randrange(2**31))
    nodes = list(graph.nodes())
    rng.shuffle(nodes)
    planted = 0
    for i in range(count):
        group = nodes[i * clique_size : (i + 1) * clique_size]
        if minor == "k5":
            graph.add_edges_from(combinations(group, 2))
        else:
            left, right = group[:3], group[3:]
            graph.add_edges_from((u, v) for u in left for v in right)
        planted += 1
    m = graph.number_of_edges()
    certificate = max(planted / m, planarity_farness_lower_bound(graph))
    return graph, certificate


def dense_planar_plus_matching(
    n: int,
    extra_fraction: float = 0.5,
    seed: Optional[int] = None,
) -> Tuple[nx.Graph, float]:
    """Maximal planar graph plus ``extra_fraction * n`` random extra edges.

    Since the base already has ``3n - 6`` edges, every extra edge pushes
    the graph past the planar budget: skewness >= #extra, giving a
    certificate of ``extra / m``.
    """
    if not 0 < extra_fraction <= 3:
        raise GraphInputError("extra_fraction must be in (0, 3]")
    rng = random.Random(seed)
    graph = random_apollonian(n, seed=rng.randrange(2**31))
    want = int(extra_fraction * n)
    added = 0
    attempts = 0
    while added < want and attempts < 50 * want:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph, added / graph.number_of_edges()


FAR_FAMILIES = {
    "gnp": gnp_far,
    "regular": lambda n, seed=None: random_regular_far(n, degree=10, seed=seed),
    "planted-k5": lambda n, seed=None: planted_kuratowski(n, minor="k5", seed=seed),
    "planted-k33": lambda n, seed=None: planted_kuratowski(n, minor="k33", seed=seed),
    "planar-plus": dense_planar_plus_matching,
}
"""Named far-from-planar families ``f(n, seed) -> (graph, farness_lb)``."""


def make_far(family: str, n: int, seed: Optional[int] = None) -> Tuple[nx.Graph, float]:
    """Build a named far family member (see :data:`FAR_FAMILIES`)."""
    try:
        builder = FAR_FAMILIES[family]
    except KeyError:
        raise GraphInputError(
            f"unknown far family {family!r}; choose from {sorted(FAR_FAMILIES)}"
        ) from None
    return builder(n, seed=seed)
