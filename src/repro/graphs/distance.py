"""Distance-to-property estimation (farness certification).

The paper's guarantees are phrased in terms of being ``epsilon``-far: more
than ``epsilon * m`` edges must be removed to obtain the property.  This
module certifies farness of concrete instances:

* **planarity**: skewness lower bounds from Euler's formula (with a girth
  refinement) and upper bounds from a greedy maximal planar subgraph;
* **cycle-freeness**: the distance is exact, ``m - (n - #components)``;
* **bipartiteness**: lower bound via greedily packed edge-disjoint odd
  cycles, upper bound via local-search max-cut.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

import networkx as nx

from ..planarity import check_planarity
from .utils import girth


# -- planarity -----------------------------------------------------------------


def planarity_skewness_lower_bound(graph: nx.Graph, use_girth: bool = True) -> int:
    """Lower bound on the number of edge removals needed for planarity.

    Per connected component: a planar graph on ``n >= 3`` nodes has at most
    ``3n - 6`` edges; with girth ``g`` at most ``g (n - 2) / (g - 2)``.
    Removing edges never decreases girth, so the girth refinement is sound.
    """
    total = 0
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        n, m = sub.number_of_nodes(), sub.number_of_edges()
        if n < 3:
            continue
        budget = 3 * n - 6
        if use_girth and m > 0:
            g = girth(sub, upper_bound=3)
            if g != 3 and g != float("inf"):
                g = girth(sub)  # exact girth needed for the tighter budget
            if g != float("inf") and g > 3:
                budget = min(budget, int(g * (n - 2) // (g - 2)))
        total += max(0, m - budget)
    return total


def planarity_farness_lower_bound(graph: nx.Graph, use_girth: bool = True) -> float:
    """Certified lower bound on the farness-from-planarity fraction."""
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    return planarity_skewness_lower_bound(graph, use_girth) / m


def greedy_maximal_planar_subgraph(
    graph: nx.Graph, seed: Optional[int] = None
) -> nx.Graph:
    """A maximal planar subgraph grown greedily in random edge order.

    Every edge is offered once; it is kept when the subgraph stays planar
    (checked with the library's own LR test).  The complement size is an
    upper bound on the skewness.
    """
    rng = random.Random(seed)
    edges = list(graph.edges())
    rng.shuffle(edges)
    sub = nx.Graph()
    sub.add_nodes_from(graph.nodes())
    for u, v in edges:
        sub.add_edge(u, v)
        n, m = sub.number_of_nodes(), sub.number_of_edges()
        if n > 2 and m > 3 * n - 6:
            sub.remove_edge(u, v)
            continue
        if not check_planarity(sub).is_planar:
            sub.remove_edge(u, v)
    return sub


def planarity_farness_bounds(
    graph: nx.Graph, seed: Optional[int] = None
) -> Tuple[float, float]:
    """(certified lower bound, constructive upper bound) on farness."""
    m = graph.number_of_edges()
    if m == 0:
        return (0.0, 0.0)
    lower = planarity_farness_lower_bound(graph)
    planar_sub = greedy_maximal_planar_subgraph(graph, seed=seed)
    upper = (m - planar_sub.number_of_edges()) / m
    return (lower, upper)


# -- cycle-freeness ---------------------------------------------------------------


def cycle_freeness_distance(graph: nx.Graph) -> int:
    """Exact number of removals to reach a forest: ``m - n + #components``."""
    return (
        graph.number_of_edges()
        - graph.number_of_nodes()
        + nx.number_connected_components(graph)
    )


def cycle_freeness_farness(graph: nx.Graph) -> float:
    """Exact farness-from-cycle-freeness fraction."""
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    return cycle_freeness_distance(graph) / m


# -- bipartiteness -------------------------------------------------------------------


def bipartiteness_farness_lower_bound(graph: nx.Graph) -> float:
    """Lower bound via greedy packing of edge-disjoint odd cycles.

    Each packed odd cycle forces at least one removal.  The packing walks
    BFS trees and claims the non-tree edge plus cycle edges of any odd
    fundamental cycle whose edges are all unclaimed.
    """
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    claimed = set()
    packed = 0
    work = nx.Graph(graph)
    progress = True
    while progress:
        progress = False
        for component in list(nx.connected_components(work)):
            sub = work.subgraph(component)
            root = next(iter(component))
            depth = nx.single_source_shortest_path_length(sub, root)
            parent = {root: None}
            for u, v in nx.bfs_edges(sub, root):
                parent[v] = u
            for u, v in sub.edges():
                if parent.get(v) == u or parent.get(u) == v:
                    continue
                if depth[u] % 2 == depth[v] % 2:  # odd fundamental cycle
                    cycle_edges = _fundamental_cycle_edges(parent, depth, u, v)
                    if all(e not in claimed for e in cycle_edges):
                        claimed.update(cycle_edges)
                        packed += 1
                        work.remove_edges_from(cycle_edges)
                        progress = True
                        break
            if progress:
                break
    return packed / m


def _fundamental_cycle_edges(parent, depth, u, v):
    edges = [_norm(u, v)]
    a, b = u, v
    while depth[a] > depth[b]:
        edges.append(_norm(a, parent[a]))
        a = parent[a]
    while depth[b] > depth[a]:
        edges.append(_norm(b, parent[b]))
        b = parent[b]
    while a != b:
        edges.append(_norm(a, parent[a]))
        edges.append(_norm(b, parent[b]))
        a, b = parent[a], parent[b]
    return edges


def _norm(u, v):
    return (u, v) if repr(u) <= repr(v) else (v, u)


def bipartiteness_farness_upper_bound(
    graph: nx.Graph, seed: Optional[int] = None, sweeps: int = 8
) -> float:
    """Upper bound via local-search max-cut 2-coloring.

    The number of monochromatic edges under any 2-coloring upper-bounds
    the distance to bipartiteness.
    """
    m = graph.number_of_edges()
    if m == 0:
        return 0.0
    rng = random.Random(seed)
    # Two starting points: BFS parity (exact on bipartite graphs) and a
    # random assignment; local search improves both, and we keep the best.
    bfs_side = {}
    for component in nx.connected_components(graph):
        root = next(iter(component))
        for v, d in nx.single_source_shortest_path_length(
            graph.subgraph(component), root
        ).items():
            bfs_side[v] = d % 2
    random_side = {v: rng.randint(0, 1) for v in graph.nodes()}
    best = m
    for side in (bfs_side, random_side):
        side = dict(side)
        for _ in range(sweeps):
            improved = False
            for v in graph.nodes():
                same = sum(1 for w in graph.adj[v] if side[w] == side[v])
                if 2 * same > graph.degree(v):
                    side[v] ^= 1
                    improved = True
            if not improved:
                break
        monochromatic = sum(1 for u, v in graph.edges() if side[u] == side[v])
        best = min(best, monochromatic)
    return best / m


def bipartiteness_farness_bounds(
    graph: nx.Graph, seed: Optional[int] = None
) -> Tuple[float, float]:
    """(lower, upper) bounds on farness-from-bipartiteness."""
    return (
        bipartiteness_farness_lower_bound(graph),
        bipartiteness_farness_upper_bound(graph, seed=seed),
    )
