"""Reproduction of *Property Testing of Planarity in the CONGEST model*.

Levi, Medina, Ron; PODC 2018 (arXiv:1805.10657).

Quick tour (see README.md for more):

>>> from repro import make_planar, test_planarity
>>> G = make_planar("delaunay", 500, seed=1)
>>> result = test_planarity(G, epsilon=0.1, seed=1)
>>> result.accepted
True

The package layers:

* :mod:`repro.congest` -- CONGEST simulator, round ledger, node programs;
* :mod:`repro.planarity` -- LR planarity test + combinatorial embeddings;
* :mod:`repro.graphs` -- generators, farness certification, lower bound;
* :mod:`repro.partition` -- Stage I (Thm 1/3) and randomized (Thm 4);
* :mod:`repro.testers` -- the planarity tester (Thm 1) and Corollary 16;
* :mod:`repro.applications` -- spanners (Corollary 17);
* :mod:`repro.baselines` -- MPX partition, baseline spanners, ground truth;
* :mod:`repro.runtime` -- parallel batch-execution engine with caching;
* :mod:`repro.analysis` -- experiment statistics and tables.
"""

from ._version import __version__
from .applications.spanner import SpannerResult, build_spanner, measure_stretch
from .baselines.mpx_partition import MPXResult, mpx_partition
from .congest.ledger import RoundLedger, TreeCostModel
from .congest.network import CongestNetwork, SimulationResult
from .congest.node import NodeContext, NodeProgram
from .errors import (
    BandwidthExceededError,
    CongestError,
    EmbeddingError,
    GraphInputError,
    PartitionError,
    ProtocolError,
    ReproError,
)
from .graphs.far_from_planar import FAR_FAMILIES, make_far
from .graphs.generators import PLANAR_FAMILIES, make_planar
from .graphs.lower_bound import LowerBoundInstance, lower_bound_instance
from .partition.parts import Part, Partition
from .partition.stage1 import Stage1Result, partition_stage1
from .partition.weighted_selection import (
    RandomizedPartitionResult,
    partition_randomized,
)
from .planarity.embedding import verify_planar_embedding
from .runtime import (
    JobSpec,
    ResultCache,
    SweepResult,
    SweepSpec,
    derive_seed,
    run_jobs,
    run_sweep,
)
from .planarity.lr_planarity import PlanarityResult, check_planarity, is_planar
from .planarity.rotation import RotationSystem
from .testers.applications import test_bipartiteness, test_cycle_freeness
from .testers.hereditary import test_hereditary_property
from .testers.planarity import PlanarityTestConfig, test_planarity
from .testers.results import (
    ApplicationTestResult,
    PartVerdict,
    PlanarityTestResult,
)

__all__ = [
    "ApplicationTestResult",
    "BandwidthExceededError",
    "CongestError",
    "CongestNetwork",
    "EmbeddingError",
    "FAR_FAMILIES",
    "GraphInputError",
    "JobSpec",
    "LowerBoundInstance",
    "MPXResult",
    "NodeContext",
    "NodeProgram",
    "PLANAR_FAMILIES",
    "Part",
    "Partition",
    "PartitionError",
    "PartVerdict",
    "PlanarityResult",
    "PlanarityTestConfig",
    "PlanarityTestResult",
    "ProtocolError",
    "RandomizedPartitionResult",
    "ReproError",
    "ResultCache",
    "RotationSystem",
    "RoundLedger",
    "SimulationResult",
    "SpannerResult",
    "Stage1Result",
    "SweepResult",
    "SweepSpec",
    "TreeCostModel",
    "__version__",
    "build_spanner",
    "check_planarity",
    "derive_seed",
    "is_planar",
    "lower_bound_instance",
    "make_far",
    "make_planar",
    "measure_stretch",
    "mpx_partition",
    "partition_randomized",
    "partition_stage1",
    "run_jobs",
    "run_sweep",
    "test_bipartiteness",
    "test_cycle_freeness",
    "test_hereditary_property",
    "test_planarity",
    "verify_planar_embedding",
]
