"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CongestError(ReproError):
    """Base class for errors raised by the CONGEST simulator."""


class BandwidthExceededError(CongestError):
    """A message exceeded the per-edge per-round bandwidth budget.

    Raised only when the network runs with ``strict_bandwidth=True``;
    otherwise over-budget messages are recorded in the run metrics.
    """

    def __init__(self, sender, receiver, bits: int, budget: int):
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.budget = budget
        super().__init__(
            f"message from {sender!r} to {receiver!r} uses {bits} bits, "
            f"exceeding the bandwidth budget of {budget} bits"
        )


class ProtocolError(CongestError):
    """A node program violated the CONGEST contract.

    Examples: sending a message to a non-neighbor, or returning an outbox
    that is not a mapping.
    """


class SimulationLimitError(CongestError):
    """The simulation exceeded its configured maximum number of rounds."""


class PartitionError(ReproError):
    """A partition invariant was violated (internal consistency check)."""


class EmbeddingError(ReproError):
    """A rotation system / combinatorial embedding is malformed."""


class GraphInputError(ReproError):
    """The input graph does not meet an algorithm's preconditions.

    For instance, algorithms that require simple undirected graphs raise
    this error when handed multigraphs or graphs with self-loops.
    """
