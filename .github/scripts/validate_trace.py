#!/usr/bin/env python3
"""Validate a telemetry trace directory (zero-dependency).

Checks every ``trace-*.jsonl`` line in a directory written by
``repro-planarity sweep --trace DIR`` against the span/event schema:

* required fields and types per line (span: name/id/pid/tid/t0/dur/attrs,
  event: the same minus ``dur``); ``dur`` must be non-negative;
* span/event ids globally unique across every file (i.e. across every
  participating process);
* every non-null ``parent`` resolves to an id present in the merged
  trace (the cross-process ``REPRO_TRACE_PARENT`` links must close);
* any ``metrics-*.json`` registries parse and carry the
  counters/gauges/histograms sections.

Torn lines (a worker killed mid-write) are tolerated and counted, the
same durability stance the readers take.  ``--chrome FILE`` additionally
validates a Chrome ``trace_event`` export; ``--require-span`` /
``--require-event`` assert specific names appear.  Exit 0 on success.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SPAN_FIELDS = {
    "name": str,
    "id": str,
    "pid": int,
    "tid": str,
    "t0": (int, float),
    "dur": (int, float),
    "attrs": dict,
}
EVENT_FIELDS = {key: SPAN_FIELDS[key] for key in SPAN_FIELDS if key != "dur"}


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_line(payload, where: str):
    if not isinstance(payload, dict):
        fail(f"{where}: line is not a JSON object")
    kind = payload.get("ev")
    if kind not in ("span", "event"):
        fail(f"{where}: ev must be 'span' or 'event', got {kind!r}")
    fields = SPAN_FIELDS if kind == "span" else EVENT_FIELDS
    for field, types in fields.items():
        if field not in payload:
            fail(f"{where}: {kind} is missing {field!r}")
        if not isinstance(payload[field], types):
            fail(
                f"{where}: {field!r} has type "
                f"{type(payload[field]).__name__}, wanted {types}"
            )
        if isinstance(payload[field], bool):
            fail(f"{where}: {field!r} must not be a bool")
    if kind == "span" and payload["dur"] < 0:
        fail(f"{where}: negative span duration {payload['dur']}")
    parent = payload.get("parent")
    if parent is not None and not isinstance(parent, str):
        fail(f"{where}: parent must be null or a span id, got {parent!r}")
    return payload


def validate_directory(directory: Path, args) -> None:
    trace_files = sorted(directory.glob("trace-*.jsonl"))
    if not trace_files:
        fail(f"no trace-*.jsonl files under {directory}")
    records = []
    torn = 0
    for path in trace_files:
        for number, line in enumerate(path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                torn += 1  # worker killed mid-write: tolerated, counted
                continue
            records.append(check_line(payload, f"{path.name}:{number}"))
    if not records:
        fail("every line was torn; the trace carries no events")

    ids = [record["id"] for record in records]
    if len(ids) != len(set(ids)):
        seen, dupes = set(), set()
        for value in ids:
            (dupes if value in seen else seen).add(value)
        fail(f"duplicate ids across processes: {sorted(dupes)[:5]}")
    known = set(ids)
    unresolved = [
        record["id"]
        for record in records
        if record.get("parent") and record["parent"] not in known
    ]
    if unresolved:
        fail(
            f"{len(unresolved)} events have parents outside the merged "
            f"trace (first: {unresolved[0]})"
        )

    spans = [record for record in records if record["ev"] == "span"]
    events = [record for record in records if record["ev"] == "event"]
    span_names = {span["name"] for span in spans}
    event_names = {event["name"] for event in events}
    for name in args.require_span:
        if name not in span_names:
            fail(f"required span {name!r} absent (saw {sorted(span_names)})")
    for name in args.require_event:
        if name not in event_names:
            fail(f"required event {name!r} absent (saw {sorted(event_names)})")

    registries = 0
    for path in sorted(directory.glob("metrics-*.json")):
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            fail(f"{path.name}: not valid JSON")
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(payload.get(section), dict):
                fail(f"{path.name}: missing {section!r} section")
        registries += 1

    processes = {record["pid"] for record in records}
    print(
        f"validate_trace: OK: {len(trace_files)} trace file(s), "
        f"{len(spans)} spans + {len(events)} events from "
        f"{len(processes)} process(es), {registries} metrics "
        f"registr{'y' if registries == 1 else 'ies'}, {torn} torn line(s)"
    )


def validate_chrome(path: Path) -> None:
    try:
        payload = json.loads(path.read_text())
    except ValueError:
        fail(f"{path}: not valid JSON")
    entries = payload.get("traceEvents")
    if not isinstance(entries, list) or not entries:
        fail(f"{path}: traceEvents must be a non-empty array")
    for position, entry in enumerate(entries):
        where = f"{path.name}: traceEvents[{position}]"
        if not isinstance(entry, dict):
            fail(f"{where}: not an object")
        if entry.get("ph") not in ("X", "i"):
            fail(f"{where}: ph must be 'X' or 'i', got {entry.get('ph')!r}")
        if not isinstance(entry.get("name"), str):
            fail(f"{where}: missing name")
        ts = entry.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: ts must be a non-negative number, got {ts!r}")
        if entry["ph"] == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: complete event needs dur >= 0, got {dur!r}")
    print(f"validate_trace: OK: {path} holds {len(entries)} Chrome events")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace_dir", help="trace directory to validate")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a span with this name is present (repeatable)",
    )
    parser.add_argument(
        "--require-event",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless an event with this name is present (repeatable)",
    )
    parser.add_argument(
        "--chrome",
        metavar="FILE",
        help="also validate a Chrome trace_event export file",
    )
    args = parser.parse_args(argv)
    directory = Path(args.trace_dir)
    if not directory.is_dir():
        fail(f"{directory} is not a directory")
    validate_directory(directory, args)
    if args.chrome:
        validate_chrome(Path(args.chrome))
    return 0


if __name__ == "__main__":
    sys.exit(main())
