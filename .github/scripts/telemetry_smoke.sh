#!/usr/bin/env bash
# Telemetry smoke: run a quick grid over the remote backend with
# --trace under two workers, kill one mid-run, and require (1) the
# merged trace directory passes schema validation with the sweep/job
# spans and remote connect events present and every cross-process
# parent link resolved, (2) `trace top` / `trace view` read it, and
# (3) the Chrome trace_event export is valid viewer input.
#
# Usage: telemetry_smoke.sh [WORKDIR]   (defaults to a fresh temp dir)
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
PORT="${TELEMETRY_SMOKE_PORT:-7351}"
# REPRO_CLI may be a multi-word command ("python -m repro.cli").
read -r -a CLI <<< "${REPRO_CLI:-repro-planarity}"
SCRIPTS="$(cd "$(dirname "$0")" && pwd)"

# Enough jobs (48, with an n=400 tail) that killing a worker lands
# mid-run and the requeue/disconnect paths show up in the trace.
GRID=(--kind test --families grid,delaunay --ns 64,128,400
      --epsilons 0.5,0.25 --seeds 0,1)

echo "== traced remote sweep (2 workers, one killed mid-run)"
"${CLI[@]}" sweep "${GRID[@]}" --backend remote --listen "127.0.0.1:$PORT" \
  --cache-dir "$WORK/store" --trace "$WORK/trace" --progress \
  > "$WORK/sweep.out" 2>&1 &
SWEEP=$!
"${CLI[@]}" worker --connect "127.0.0.1:$PORT" --retry-seconds 60 &
W1=$!
"${CLI[@]}" worker --connect "127.0.0.1:$PORT" --retry-seconds 60 &
W2=$!

sleep 3
if kill -9 "$W1" 2>/dev/null; then
  echo "killed worker $W1 mid-run"
else
  echo "worker $W1 already finished (grid drained early)"
fi

wait "$SWEEP"
kill "$W2" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
tail -3 "$WORK/sweep.out"

echo "== merged trace must validate (schema, unique ids, parent links)"
python "$SCRIPTS/validate_trace.py" "$WORK/trace" \
  --require-span sweep --require-span job \
  --require-event remote.connect

echo "== trace CLI reads the directory"
"${CLI[@]}" trace top "$WORK/trace" --name job
"${CLI[@]}" trace view "$WORK/trace" --max-lines 20 > /dev/null

echo "== Chrome export must be valid viewer input"
"${CLI[@]}" trace export "$WORK/trace" --chrome \
  --out "$WORK/trace_chrome.json"
python "$SCRIPTS/validate_trace.py" "$WORK/trace" \
  --chrome "$WORK/trace_chrome.json"
