#!/usr/bin/env bash
# Service smoke: one persistent `repro-planarity serve` process, two
# `worker --reconnect` processes, two *concurrent* `submit` clients.
# One worker is kill -9'd mid-run.  Requirements: both clients finish
# with record tables byte-identical to their serial legs, and a
# SIGTERM shuts the service down cleanly (rc 0) releasing the
# reconnect worker (rc 0 -- it got its exit frame instead of
# redialing).
#
# Usage: service_smoke.sh [WORKDIR]   (defaults to a fresh temp dir)
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
PORT="${SERVICE_SMOKE_PORT:-7351}"
EP="127.0.0.1:$PORT"
# REPRO_CLI may be a multi-word command ("python -m repro.cli").
read -r -a CLI <<< "${REPRO_CLI:-repro-planarity}"

# Same E01-style quick grid as the remote smoke, split by seed into
# two disjoint client sweeps -- enough jobs (36 each, with an n=400
# tail) that killing a worker lands mid-run.
AXES=(--kind test --families grid,tri-grid,delaunay --ns 64,128,400
      --epsilons 0.5,0.25)
GRID_A=("${AXES[@]}" --seeds 0,1)
GRID_B=("${AXES[@]}" --seeds 2,3)

echo "== serial reference legs"
"${CLI[@]}" submit "${GRID_A[@]}" --backend serial \
  --markdown "$WORK/serial_a.md" > /dev/null
"${CLI[@]}" submit "${GRID_B[@]}" --backend serial \
  --markdown "$WORK/serial_b.md" > /dev/null

echo "== start service + two reconnect workers"
"${CLI[@]}" serve --listen "$EP" --cache-dir "$WORK/store" \
  > "$WORK/serve.out" 2>&1 &
SERVE=$!
for _ in $(seq 1 100); do
  grep -q "service listening on" "$WORK/serve.out" 2>/dev/null && break
  sleep 0.1
done
grep -q "service listening on" "$WORK/serve.out"

"${CLI[@]}" worker --connect "$EP" --reconnect &
W1=$!
"${CLI[@]}" worker --connect "$EP" --reconnect &
W2=$!

echo "== two concurrent clients (one worker killed mid-run)"
"${CLI[@]}" submit "${GRID_A[@]}" --connect "$EP" --name alice \
  --markdown "$WORK/service_a.md" > "$WORK/client_a.out" 2>&1 &
CA=$!
"${CLI[@]}" submit "${GRID_B[@]}" --connect "$EP" --name bob \
  --markdown "$WORK/service_b.md" > "$WORK/client_b.out" 2>&1 &
CB=$!

sleep 3
if kill -9 "$W1" 2>/dev/null; then
  echo "killed worker $W1 mid-run"
else
  echo "worker $W1 already finished (grid drained early); requeue path"
  echo "is separately covered by tests/test_runtime_service.py"
fi

wait "$CA"
wait "$CB"

echo "== records must be byte-identical to the serial legs"
cmp "$WORK/serial_a.md" "$WORK/service_a.md"
cmp "$WORK/serial_b.md" "$WORK/service_b.md"
echo "byte-identical: OK"

echo "== resubmit must be a pure store-hit run (both sweeps, no fleet)"
"${CLI[@]}" submit "${GRID_A[@]}" --connect "$EP" \
  --markdown "$WORK/resubmit_a.md" > /dev/null
cmp "$WORK/serial_a.md" "$WORK/resubmit_a.md"
echo "store-hit resubmit: OK"

echo "== SIGTERM stops the service and releases the reconnect worker"
kill -TERM "$SERVE"
wait "$SERVE"
echo "service exited cleanly"
wait "$W2"
echo "reconnect worker exited cleanly (got its exit frame)"

echo "== store stats after the fleet run"
"${CLI[@]}" cache stats --cache-dir "$WORK/store"
