#!/usr/bin/env bash
# Remote-backend smoke: serve the E01-style quick grid over TCP to two
# workers, kill one mid-run, and require (1) the sweep completes with
# records byte-identical to the serial leg and (2) a follow-up
# --resume run is a pure merge (executed=0).
#
# Usage: remote_smoke.sh [WORKDIR]   (defaults to a fresh temp dir)
set -euo pipefail

WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"
PORT="${REMOTE_SMOKE_PORT:-7341}"
# REPRO_CLI may be a multi-word command ("python -m repro.cli").
read -r -a CLI <<< "${REPRO_CLI:-repro-planarity}"

# E01 quick grid: the completeness sweep's planar families at smoke
# sizes -- enough jobs (72, with an n=400 tail) that killing a worker
# lands mid-run.
GRID=(--kind test --families grid,tri-grid,delaunay --ns 64,128,400
      --epsilons 0.5,0.25 --seeds 0,1,2,3)

echo "== serial reference leg"
"${CLI[@]}" sweep "${GRID[@]}" --markdown "$WORK/serial.md" > /dev/null

echo "== remote leg (2 workers, one killed mid-run)"
"${CLI[@]}" sweep "${GRID[@]}" --backend remote --listen "127.0.0.1:$PORT" \
  --cache-dir "$WORK/store" --markdown "$WORK/remote.md" \
  > "$WORK/sweep.out" 2>&1 &
SWEEP=$!
"${CLI[@]}" worker --connect "127.0.0.1:$PORT" --retry-seconds 60 &
W1=$!
"${CLI[@]}" worker --connect "127.0.0.1:$PORT" --retry-seconds 60 &
W2=$!

sleep 3
if kill -9 "$W1" 2>/dev/null; then
  echo "killed worker $W1 mid-run"
else
  echo "worker $W1 already finished (grid drained early); requeue path"
  echo "is separately covered by tests/test_runtime_remote.py"
fi

wait "$SWEEP"
kill "$W2" 2>/dev/null || true
wait "$W2" 2>/dev/null || true

echo "== records must be byte-identical to the serial leg"
cmp "$WORK/serial.md" "$WORK/remote.md"
echo "byte-identical: OK"

echo "== resume must be a pure merge"
"${CLI[@]}" sweep "${GRID[@]}" --resume --cache-dir "$WORK/store" \
  | tee "$WORK/resume.out" | tail -2
grep -q "executed=0" "$WORK/resume.out"
echo "resume executed=0: OK"

echo "== store stats after the fleet run"
"${CLI[@]}" cache stats --cache-dir "$WORK/store"
