"""E12 (Table 8) -- ablation: Stage I vs the Elkin-Neiman/MPX partition.

Claim reproduced: the Section 1.1 remark that replacing Stage I with the
[12]-style random-shift partition yields an ``O(log^2 n poly(1/eps))``
tester versus Stage I's ``O(log n poly(1/eps))``.  The mechanism: MPX
parts have diameter ``Theta(log n / eps)``, so *Stage II's* label and
sample broadcasts (which pipeline O(log n / eps) sampled labels of
O(D log n) bits over depth-D trees) pick up an extra log n factor, while
Stage I parts keep poly(1/eps) diameters.  Measured: total rounds of both
variants across n, plus the part-diameter column that drives the gap.
"""

from __future__ import annotations

import math

import pytest

from _harness import quick_mode, save_table
from repro.analysis import linear_fit
from repro.analysis.tables import Table
from repro.baselines import mpx_partition
from repro.graphs import make_planar
from repro.testers import test_planarity as run_planarity
from repro.testers.planarity import stage2_over_partition
from repro.testers.stage2 import Stage2Config

SIZES = (128, 256, 512) if quick_mode() else (128, 256, 512, 1024, 2048)
EPSILON = 0.25
FAMILY = "grid"


def mpx_variant_rounds(graph, epsilon, seed):
    """Tester rounds when Stage I is replaced by the MPX partition."""
    mpx = mpx_partition(graph, beta=epsilon / 2, seed=seed)
    verdicts, rejecting, stage2_rounds = stage2_over_partition(
        graph, mpx.partition, Stage2Config(epsilon=epsilon), seed=seed
    )
    return mpx.rounds + stage2_rounds, mpx.partition.max_height(), not rejecting


@pytest.fixture(scope="module")
def ablation_table():
    table = Table(
        f"E12: Stage I vs MPX partition inside the tester ({FAMILY}, eps={EPSILON})",
        ["n", "stageI rounds", "stageI max height", "MPX rounds",
         "MPX max height", "ratio MPX/stageI"],
    )
    ns, stage1_rounds, mpx_rounds = [], [], []
    for n in SIZES:
        graph = make_planar(FAMILY, n, seed=0)
        actual_n = graph.number_of_nodes()
        result = run_planarity(graph, epsilon=EPSILON, seed=0)
        assert result.accepted
        rounds_mpx, mpx_height, accepted = mpx_variant_rounds(graph, EPSILON, seed=0)
        assert accepted  # one-sided error holds for the ablation too
        ns.append(actual_n)
        stage1_rounds.append(result.rounds)
        mpx_rounds.append(rounds_mpx)
        table.add_row(
            actual_n,
            result.rounds,
            result.stage1.partition.max_height(),
            rounds_mpx,
            mpx_height,
            rounds_mpx / result.rounds,
        )
    logs = [math.log2(n) for n in ns]
    fit1 = linear_fit(logs, stage1_rounds)
    fit2 = linear_fit(logs, mpx_rounds)
    table.add_row(
        "slope vs log2 n",
        f"{fit1.slope:.0f} (R^2={fit1.r_squared:.2f})",
        "-",
        f"{fit2.slope:.0f} (R^2={fit2.r_squared:.2f})",
        "-",
        "-",
    )
    save_table(table, "e12_ablation_partition.md")
    return ns, stage1_rounds, mpx_rounds


def test_mpx_part_heights_grow_with_n(ablation_table):
    ns, _s1, _mpx = ablation_table
    assert len(ns) == len(SIZES)


def test_both_variants_sublinear(ablation_table):
    ns, stage1_rounds, mpx_rounds = ablation_table
    growth = ns[-1] / ns[0]
    assert stage1_rounds[-1] / stage1_rounds[0] < growth
    assert mpx_rounds[-1] / mpx_rounds[0] < growth


def test_benchmark_mpx_variant(benchmark, ablation_table):
    graph = make_planar(FAMILY, 512, seed=0)
    rounds, _h, accepted = benchmark(
        lambda: mpx_variant_rounds(graph, EPSILON, seed=0)
    )
    assert accepted
