"""E12 (Table 8) -- ablation: Stage I vs the Elkin-Neiman/MPX partition.

Claim reproduced: the Section 1.1 remark that replacing Stage I with the
[12]-style random-shift partition yields an ``O(log^2 n poly(1/eps))``
tester versus Stage I's ``O(log n poly(1/eps))``.  The mechanism: MPX
parts have diameter ``Theta(log n / eps)``, so *Stage II's* label and
sample broadcasts (which pipeline O(log n / eps) sampled labels of
O(D log n) bits over depth-D trees) pick up an extra log n factor, while
Stage I parts keep poly(1/eps) diameters.  Measured: total rounds of both
variants across n, plus the part-diameter column that drives the gap.

Both variants run as job batches on the :mod:`repro.runtime` engine --
``test_planarity`` for Stage I, the ``mpx_ablation`` kind for the
random-shift replacement (``REPRO_BENCH_BACKEND=process`` parallelizes
across sizes).
"""

from __future__ import annotations

import math

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis import linear_fit
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.runtime import JobSpec, run_jobs

SIZES = (128, 256, 512) if quick_mode() else (128, 256, 512, 1024, 2048)
EPSILON = 0.25
FAMILY = "grid"


@pytest.fixture(scope="module")
def ablation_table():
    stage1_specs = [
        JobSpec.make(
            "test_planarity", family=FAMILY, n=n, seed=0, epsilon=EPSILON
        )
        for n in SIZES
    ]
    mpx_specs = [
        JobSpec.make(
            "mpx_ablation", family=FAMILY, n=n, seed=0, epsilon=EPSILON
        )
        for n in SIZES
    ]
    batch = run_jobs(
        stage1_specs + mpx_specs, backend=bench_backend(), cache=bench_cache()
    )
    records = list(batch)
    stage1_records = records[: len(SIZES)]
    mpx_records = records[len(SIZES):]

    table = Table(
        f"E12: Stage I vs MPX partition inside the tester ({FAMILY}, eps={EPSILON})",
        ["n", "stageI rounds", "stageI max height", "MPX rounds",
         "MPX max height", "ratio MPX/stageI"],
    )
    ns, stage1_rounds, mpx_rounds = [], [], []
    for stage1, mpx in zip(stage1_records, mpx_records):
        assert stage1["accepted"]
        assert mpx["accepted"]  # one-sided error holds for the ablation too
        ns.append(stage1["n"])
        stage1_rounds.append(stage1["rounds"])
        mpx_rounds.append(mpx["rounds"])
        table.add_row(
            stage1["n"],
            stage1["rounds"],
            stage1["max_part_height"],
            mpx["rounds"],
            mpx["max_height"],
            mpx["rounds"] / stage1["rounds"],
        )
    logs = [math.log2(n) for n in ns]
    fit1 = linear_fit(logs, stage1_rounds)
    fit2 = linear_fit(logs, mpx_rounds)
    table.add_row(
        "slope vs log2 n",
        f"{fit1.slope:.0f} (R^2={fit1.r_squared:.2f})",
        "-",
        f"{fit2.slope:.0f} (R^2={fit2.r_squared:.2f})",
        "-",
        "-",
    )
    save_table(table, "e12_ablation_partition.md")
    return ns, stage1_rounds, mpx_rounds


def test_mpx_part_heights_grow_with_n(ablation_table):
    ns, _s1, _mpx = ablation_table
    assert len(ns) == len(SIZES)


def test_both_variants_sublinear(ablation_table):
    ns, stage1_rounds, mpx_rounds = ablation_table
    growth = ns[-1] / ns[0]
    assert stage1_rounds[-1] / stage1_rounds[0] < growth
    assert mpx_rounds[-1] / mpx_rounds[0] < growth


def test_benchmark_mpx_variant(benchmark, ablation_table):
    from repro.runtime import run_job

    spec = JobSpec.make(
        "mpx_ablation", family=FAMILY, n=512, seed=0, epsilon=EPSILON
    )
    graph = make_planar(FAMILY, 512, seed=0)
    record = benchmark(lambda: run_job(spec, graph))
    assert record["accepted"]
