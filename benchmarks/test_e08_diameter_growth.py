"""E8 (Table 5) -- Claim 4: part diameters grow at most geometrically.

Claim reproduced: "for each phase i and part P, the subgraph induced by P
is connected and has diameter at most 4^i".  We audit the spanning-tree
height (an upper bound on the radius) after every phase against 4^i, and
report how far below the bound reality stays.
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.partition import partition_stage1

FAMILIES = ("grid", "delaunay", "apollonian", "tri-grid")
N = 300 if quick_mode() else 600


@pytest.fixture(scope="module")
def diameter_table():
    table = Table(
        "E8: Claim 4 audit -- max part tree height after phase i vs 4^i",
        ["family", "phase", "max height", "bound 4^i", "headroom", "parts"],
    )
    violations = 0
    for family in FAMILIES:
        graph = make_planar(family, N, seed=0)
        result = partition_stage1(graph, epsilon=0.05)
        for stats in result.phases:
            bound = 4**stats.phase
            if stats.max_height_after > bound:
                violations += 1
            table.add_row(
                family,
                stats.phase,
                stats.max_height_after,
                bound,
                bound / max(1, stats.max_height_after),
                stats.parts_after,
            )
    save_table(table, "e08_diameter_growth.md")
    return violations


def test_claim4_never_violated(diameter_table):
    assert diameter_table == 0


def test_benchmark_deep_phase_run(benchmark, diameter_table):
    graph = make_planar("grid", N, seed=0)
    result = benchmark(lambda: partition_stage1(graph, epsilon=0.05))
    assert result.success
