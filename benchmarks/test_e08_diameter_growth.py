"""E8 (Table 5) -- Claim 4: part diameters grow at most geometrically.

Claim reproduced: "for each phase i and part P, the subgraph induced by P
is connected and has diameter at most 4^i".  We audit the spanning-tree
height (an upper bound on the radius) after every phase against 4^i, and
report how far below the bound reality stays.

The per-family runs execute as ``partition_phase_audit`` jobs on the
:mod:`repro.runtime` engine (``REPRO_BENCH_BACKEND=process``
parallelizes across families); each record carries the full per-phase
trajectory as a JSON column that this table unrolls.
"""

from __future__ import annotations

import json

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.partition import partition_stage1
from repro.runtime import JobSpec, run_jobs

FAMILIES = ("grid", "delaunay", "apollonian", "tri-grid")
N = 300 if quick_mode() else 600


@pytest.fixture(scope="module")
def diameter_table():
    specs = [
        JobSpec.make(
            "partition_phase_audit", family=family, n=N, seed=0, epsilon=0.05
        )
        for family in FAMILIES
    ]
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())

    table = Table(
        "E8: Claim 4 audit -- max part tree height after phase i vs 4^i",
        ["family", "phase", "max height", "bound 4^i", "headroom", "parts"],
    )
    violations = 0
    for record in batch:
        for phase, max_height, parts in json.loads(record["phases_json"]):
            bound = 4**phase
            if max_height > bound:
                violations += 1
            table.add_row(
                record["family"],
                phase,
                max_height,
                bound,
                bound / max(1, max_height),
                parts,
            )
    save_table(table, "e08_diameter_growth.md")
    return violations


def test_claim4_never_violated(diameter_table):
    assert diameter_table == 0


def test_benchmark_deep_phase_run(benchmark, diameter_table):
    graph = make_planar("grid", N, seed=0)
    result = benchmark(lambda: partition_stage1(graph, epsilon=0.05))
    assert result.success
