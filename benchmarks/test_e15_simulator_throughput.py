"""E15 -- simulator throughput: compiled topologies + instrumentation profiles.

Claim reproduced (engineering, not paper): the two-tier simulator core
makes the CONGEST delivery loop fast enough that instrumentation, not
the scheduler, is the knob.  On dense graphs (n >= 500) the ``fast``
profile -- elided validation, memoized bit accounting, O(1) broadcast
charging -- must beat the ``faithful`` profile by >= 3x while producing
byte-identical outputs, rounds, and message/bit totals.

The sweep half of the table runs the same workload through the
:mod:`repro.runtime` engine and asserts the topology-reuse path: all
trials of one graph share a single compiled topology.
"""

from __future__ import annotations

import time

import networkx as nx

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.congest import (
    CongestNetwork,
    compile_topology,
    reset_topology_stats,
    topology_stats,
)
from repro.congest.programs import BroadcastStormProgram
from repro.runtime import JobSpec, ResultCache, SerialBackend, run_jobs
import pytest

N = 500
EDGE_PROB = 0.08  # ~20k directed deliveries per round at n=500
STORM_ROUNDS = 6 if quick_mode() else 12
REPEATS = 2 if quick_mode() else 3


def _storm(network: CongestNetwork, profile: str):
    return network.run(
        BroadcastStormProgram,
        max_rounds=STORM_ROUNDS + 2,
        config={"storm_rounds": STORM_ROUNDS},
        profile=profile,
    )


def _time_profile(network: CongestNetwork, profile: str):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = _storm(network, profile)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def throughput_table():
    graph = nx.gnp_random_graph(N, EDGE_PROB, seed=0)
    compile_topology(graph)  # pre-compile so timings cover delivery only
    network = CongestNetwork(graph, seed=0)

    faithful_time, faithful = _time_profile(network, "faithful")
    fast_time, fast = _time_profile(network, "fast")
    speedup = faithful_time / fast_time

    table = Table(
        f"E15: simulator throughput on G(n={N}, p={EDGE_PROB}), "
        f"{STORM_ROUNDS} storm rounds",
        ["profile", "rounds", "messages", "Mbit", "wall s", "msgs/s", "speedup"],
    )
    for name, seconds, result in (
        ("faithful", faithful_time, faithful),
        ("fast", fast_time, fast),
    ):
        table.add_row(
            name,
            result.rounds,
            result.total_messages,
            round(result.total_bits / 1e6, 2),
            round(seconds, 4),
            int(result.total_messages / seconds),
            round(faithful_time / seconds, 2),
        )

    # Topology-reuse half: replay trials through the runtime engine and
    # count compilations.
    reset_topology_stats()
    specs = [
        JobSpec.make(
            "simulate_program",
            family="delaunay",
            n=256,
            seed=0,
            program="storm",
            profile="fast",
            storm_rounds=STORM_ROUNDS,
            trial=trial,
        )
        for trial in range(4)
    ]
    batch = run_jobs(specs, backend=SerialBackend(), cache=ResultCache())
    compiled = topology_stats().compiled
    table.add_row(
        "sweep (4 trials)",
        batch.records[0]["rounds"],
        sum(r["messages"] for r in batch.records),
        round(sum(r["bits"] for r in batch.records) / 1e6, 2),
        "-",
        "-",
        f"{compiled} topology compile",
    )

    save_table(
        table,
        "e15_simulator_throughput.md",
        metrics={
            "n": N,
            "edge_prob": EDGE_PROB,
            "storm_rounds": STORM_ROUNDS,
            "repeats": REPEATS,
            "faithful_s": round(faithful_time, 6),
            "fast_s": round(fast_time, 6),
            "speedup": round(speedup, 3),
            "gate": 3.0,
        },
    )
    return speedup, faithful, fast, compiled, batch


def test_fast_profile_at_least_3x(throughput_table):
    speedup, _faithful, _fast, _compiled, _batch = throughput_table
    assert speedup >= 3.0, f"fast profile speedup only {speedup:.2f}x"


def test_profiles_agree_exactly(throughput_table):
    _speedup, faithful, fast, _compiled, _batch = throughput_table
    assert faithful.outputs == fast.outputs
    assert faithful.rounds == fast.rounds
    assert faithful.halted == fast.halted
    assert faithful.total_messages == fast.total_messages
    assert faithful.total_bits == fast.total_bits


def test_sweep_compiles_topology_once(throughput_table):
    _speedup, _faithful, _fast, compiled, batch = throughput_table
    assert compiled == 1
    assert batch.executed == 4


def test_benchmark_fast_profile_storm(benchmark, throughput_table):
    graph = nx.gnp_random_graph(N, EDGE_PROB, seed=0)
    network = CongestNetwork(graph, seed=0)
    result = benchmark(lambda: _storm(network, "fast"))
    assert result.halted


TELEMETRY_GATE = 1.03  # disabled-telemetry overhead budget: <= 3%


def _storm_hooked(network: CongestNetwork, sink: list):
    def hook(round_index, active, prof):
        sink.append((round_index, active, prof.total_messages))

    return network.run(
        BroadcastStormProgram,
        max_rounds=STORM_ROUNDS + 2,
        config={"storm_rounds": STORM_ROUNDS},
        profile="fast",
        round_hook=hook,
    )


def test_disabled_telemetry_overhead_gate(throughput_table):
    """The telemetry seams must be free when telemetry is off.

    A/B-interleaved best-of-{REPEATS+3}: the production disabled path
    (``round_hook=None`` -- one predicted branch per round) against the
    same storm with a live per-round hook, on one network.  The
    disabled side must run within :data:`TELEMETRY_GATE` of the hooked
    side (small absolute slack absorbs timer noise at quick-mode
    sizes); in a sane world it is strictly faster, so the gate catches
    any accidental always-on instrumentation in the delivery loop.
    """
    from repro.telemetry import telemetry_enabled

    assert not telemetry_enabled(), (
        "benchmarks must run with telemetry disabled -- is "
        "REPRO_TELEMETRY or REPRO_TRACE_DIR leaking into the bench "
        "environment?"
    )
    graph = nx.gnp_random_graph(N, EDGE_PROB, seed=0)
    network = CongestNetwork(graph, seed=0)
    _storm(network, "fast")  # warm the topology/plane caches
    disabled_s = float("inf")
    hooked_s = float("inf")
    rows: list = []
    for _ in range(REPEATS + 3):
        start = time.perf_counter()
        _storm(network, "fast")
        disabled_s = min(disabled_s, time.perf_counter() - start)
        rows.clear()
        start = time.perf_counter()
        hooked = _storm_hooked(network, rows)
        hooked_s = min(hooked_s, time.perf_counter() - start)
    assert hooked.halted
    assert len(rows) == hooked.rounds  # the hook fired once per round
    overhead = disabled_s / hooked_s
    table = Table(
        f"E15: telemetry overhead on G(n={N}, p={EDGE_PROB}), "
        f"{STORM_ROUNDS} storm rounds (fast profile)",
        ["mode", "wall s", "vs hooked"],
    )
    table.add_row("telemetry disabled", round(disabled_s, 4), round(overhead, 3))
    table.add_row("round hook active", round(hooked_s, 4), 1.0)
    save_table(
        table,
        "e15_telemetry_overhead.md",
        metrics={
            "disabled_s": round(disabled_s, 6),
            "hooked_s": round(hooked_s, 6),
            "disabled_over_hooked": round(overhead, 4),
            "gate": TELEMETRY_GATE,
        },
    )
    assert disabled_s <= hooked_s * TELEMETRY_GATE + 0.01, (
        f"disabled-telemetry storm took {disabled_s:.4f}s vs {hooked_s:.4f}s "
        "with the round hook active -- the disabled path is paying for "
        "instrumentation"
    )
