"""E1 (Table 1) -- Theorem 1 completeness: planar graphs are always accepted.

Claim reproduced: one-sided error.  "If G is planar, then every node
outputs accept" -- the rejection rate on every planar family, size, and
epsilon must be identically zero.

The full family x size x epsilon x trial grid is expanded and executed
by the :mod:`repro.runtime` engine (see ``REPRO_BENCH_BACKEND``); the
table aggregates the per-cell records.
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.runtime import SweepSpec, run_sweep
from repro.testers import test_planarity as run_planarity

FAMILIES = ("grid", "tri-grid", "apollonian", "delaunay", "outerplanar", "tree")
SIZES = (64, 256) if quick_mode() else (64, 256, 1024)
EPSILONS = (0.5, 0.1)
TRIALS = 3


@pytest.fixture(scope="module")
def completeness_table():
    sweep = SweepSpec.make(
        "test_planarity",
        families=FAMILIES,
        ns=SIZES,
        seeds=tuple(range(TRIALS)),
        epsilon=list(EPSILONS),
    )
    result = run_sweep(sweep, backend=bench_backend(), cache=bench_cache())

    table = Table(
        "E1: one-sided error -- rejection rate on planar inputs (must be 0)",
        ["family", "n", "epsilon", "trials", "rejections", "rounds (last run)"],
    )
    total_rejections = 0
    # expand() keeps the TRIALS seeds of one (family, n, epsilon) cell
    # adjacent, so the record stream chunks into cells directly.
    records = result.records
    for cell_start in range(0, len(records), TRIALS):
        cell = records[cell_start : cell_start + TRIALS]
        rejections = sum(not record["accepted"] for record in cell)
        total_rejections += rejections
        table.add_row(
            cell[0]["family"],
            cell[0]["n"],
            cell[0]["epsilon"],
            TRIALS,
            rejections,
            cell[-1]["rounds"],
        )
    save_table(table, "e01_completeness.md")
    return total_rejections


def test_zero_rejections_on_planar(completeness_table):
    assert completeness_table == 0


def test_benchmark_tester_on_planar(benchmark, completeness_table):
    graph = make_planar("delaunay", 256, seed=0)
    result = benchmark(lambda: run_planarity(graph, epsilon=0.1, seed=0))
    assert result.accepted
