"""E1 (Table 1) -- Theorem 1 completeness: planar graphs are always accepted.

Claim reproduced: one-sided error.  "If G is planar, then every node
outputs accept" -- the rejection rate on every planar family, size, and
epsilon must be identically zero.
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.testers import test_planarity as run_planarity

FAMILIES = ("grid", "tri-grid", "apollonian", "delaunay", "outerplanar", "tree")
SIZES = (64, 256) if quick_mode() else (64, 256, 1024)
EPSILONS = (0.5, 0.1)
TRIALS = 3


@pytest.fixture(scope="module")
def completeness_table():
    table = Table(
        "E1: one-sided error -- rejection rate on planar inputs (must be 0)",
        ["family", "n", "epsilon", "trials", "rejections", "rounds (last run)"],
    )
    total_rejections = 0
    for family in FAMILIES:
        for n in SIZES:
            for epsilon in EPSILONS:
                rejections = 0
                rounds = 0
                for seed in range(TRIALS):
                    graph = make_planar(family, n, seed=seed)
                    result = run_planarity(graph, epsilon=epsilon, seed=seed)
                    rejections += not result.accepted
                    rounds = result.rounds
                total_rejections += rejections
                table.add_row(family, n, epsilon, TRIALS, rejections, rounds)
    save_table(table, "e01_completeness.md")
    return total_rejections


def test_zero_rejections_on_planar(completeness_table):
    assert completeness_table == 0


def test_benchmark_tester_on_planar(benchmark, completeness_table):
    graph = make_planar("delaunay", 256, seed=0)
    result = benchmark(lambda: run_planarity(graph, epsilon=0.1, seed=0))
    assert result.accepted
