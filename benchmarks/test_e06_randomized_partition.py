"""E6 (Table 4) -- Theorem 4: the randomized partition.

Claims reproduced: success probability >= 1 - delta for the eps*n cut
target, and a round complexity of O(poly(1/eps)(log(1/delta) + log* n))
-- in particular *no* O(log n) factor (compare the rounds column against
E5 at the same epsilon).

The delta x trial grid executes as :class:`JobSpec` batches on the
:mod:`repro.runtime` engine (``REPRO_BENCH_BACKEND=process``
parallelizes the trials); every trial pins the same graph via
``graph_seed`` while the algorithm seed varies, so all jobs share one
generated instance -- and one compiled topology.
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis import wilson_interval
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.runtime import JobSpec, run_jobs

DELTAS = (0.5, 0.1, 0.01)
EPSILON = 0.2
N = 300 if quick_mode() else 500
TRIALS = 10 if quick_mode() else 30


@pytest.fixture(scope="module")
def randomized_table():
    specs = [
        JobSpec.make(
            "partition_randomized",
            family="delaunay",
            n=N,
            seed=seed,
            graph_seed=0,
            epsilon=EPSILON,
            delta=delta,
        )
        for delta in DELTAS
        for seed in range(TRIALS)
    ]
    specs.append(
        JobSpec.make(
            "partition_stage1",
            family="delaunay",
            n=N,
            seed=0,
            graph_seed=0,
            epsilon=EPSILON,
            target_cut="eps*n",
        )
    )
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())
    records = list(batch)

    n = records[0]["n"]  # actual generated size, from the records
    table = Table(
        f"E6: Theorem 4 randomized partition (delaunay n={n}, eps={EPSILON})",
        ["delta", "trials/phase", "runs", "target met", "success (95% CI)",
         "mean rounds", "mean phases"],
    )
    outcomes = {}
    for index, delta in enumerate(DELTAS):
        cell = records[index * TRIALS : (index + 1) * TRIALS]
        successes = sum(record["met_target"] for record in cell)
        rounds = [record["rounds"] for record in cell]
        phase_counts = [record["phases"] for record in cell]
        lo, hi = wilson_interval(successes, TRIALS)
        outcomes[delta] = successes / TRIALS
        table.add_row(
            delta,
            cell[0]["trials"],
            TRIALS,
            successes,
            f"{successes / TRIALS:.2f} [{lo:.2f}, {hi:.2f}]",
            sum(rounds) / len(rounds),
            sum(phase_counts) / len(phase_counts),
        )
    det = records[-1]
    table.add_row(
        "det. (E5)", "-", 1, int(det["success"]), "1.00",
        det["rounds"], det["phases"],
    )
    save_table(table, "e06_randomized_partition.md")
    return outcomes


def test_success_probability_meets_delta(randomized_table):
    for delta, rate in randomized_table.items():
        assert rate >= 1 - delta - 0.1, (delta, rate)


def test_benchmark_randomized_partition(benchmark, randomized_table):
    from repro.partition import partition_randomized

    graph = make_planar("delaunay", N, seed=0)
    result = benchmark(
        lambda: partition_randomized(graph, epsilon=EPSILON, delta=0.1, seed=0)
    )
    assert result.partition.size >= 1
