"""E6 (Table 4) -- Theorem 4: the randomized partition.

Claims reproduced: success probability >= 1 - delta for the eps*n cut
target, and a round complexity of O(poly(1/eps)(log(1/delta) + log* n))
-- in particular *no* O(log n) factor (compare the rounds column against
E5 at the same epsilon).
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis import wilson_interval
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.partition import partition_randomized, partition_stage1

DELTAS = (0.5, 0.1, 0.01)
EPSILON = 0.2
N = 300 if quick_mode() else 500
TRIALS = 10 if quick_mode() else 30


@pytest.fixture(scope="module")
def randomized_table():
    graph = make_planar("delaunay", N, seed=0)
    n = graph.number_of_nodes()
    table = Table(
        f"E6: Theorem 4 randomized partition (delaunay n={n}, eps={EPSILON})",
        ["delta", "trials/phase", "runs", "target met", "success (95% CI)",
         "mean rounds", "mean phases"],
    )
    outcomes = {}
    for delta in DELTAS:
        successes = 0
        rounds = []
        phases = []
        trials_used = None
        for seed in range(TRIALS):
            result = partition_randomized(
                graph, epsilon=EPSILON, delta=delta, seed=seed
            )
            trials_used = result.trials
            successes += result.met_target
            rounds.append(result.rounds)
            phases.append(len(result.phases))
        lo, hi = wilson_interval(successes, TRIALS)
        outcomes[delta] = successes / TRIALS
        table.add_row(
            delta,
            trials_used,
            TRIALS,
            successes,
            f"{successes / TRIALS:.2f} [{lo:.2f}, {hi:.2f}]",
            sum(rounds) / len(rounds),
            sum(phases) / len(phases),
        )
    det = partition_stage1(graph, epsilon=EPSILON, target_cut=EPSILON * n)
    table.add_row("det. (E5)", "-", 1, int(det.success), "1.00", det.rounds, len(det.phases))
    save_table(table, "e06_randomized_partition.md")
    return outcomes


def test_success_probability_meets_delta(randomized_table):
    for delta, rate in randomized_table.items():
        assert rate >= 1 - delta - 0.1, (delta, rate)


def test_benchmark_randomized_partition(benchmark, randomized_table):
    graph = make_planar("delaunay", N, seed=0)
    result = benchmark(
        lambda: partition_randomized(graph, epsilon=EPSILON, delta=0.1, seed=0)
    )
    assert result.partition.size >= 1
