"""E11 (Figure 4) -- Theorem 2: the Omega(log n) lower-bound construction.

Claims reproduced (Claims 11 & 12): the surgically-thinned G(n, c/n) is
simultaneously (a) certified Theta(1)-far from planarity and (b) of girth
Omega(log n), so every node's view within ``ceil(girth/2) - 1`` rounds is
a tree.  A tree view also occurs in a forest -- a planar graph on which a
one-sided tester must accept -- hence no one-sided tester running fewer
rounds can reject these far graphs.  The girth series grows with log n.

The size series runs as graphless ``lower_bound_audit`` jobs on the
:mod:`repro.runtime` engine (the runner synthesizes the hard instance
itself; ``REPRO_BENCH_BACKEND=process`` parallelizes across sizes).
"""

from __future__ import annotations

import math

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis import linear_fit
from repro.analysis.tables import Table
from repro.graphs import lower_bound_instance
from repro.runtime import JobSpec, run_jobs

SIZES = (256, 512, 1024) if quick_mode() else (256, 512, 1024, 2048, 4096)


@pytest.fixture(scope="module")
def lower_bound_table():
    specs = [
        JobSpec.make("lower_bound_audit", n=n, seed=0) for n in SIZES
    ]
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())

    table = Table(
        "E11: Theorem 2 hard instances -- girth grows with log n while the "
        "graph stays certified-far",
        ["n", "m", "girth", "target", "removed (frac of m)", "farness lb",
         "blind radius", "views are trees"],
    )
    rows = []
    for record in batch:
        n = record["n"]
        m = record["m"]
        rows.append(
            (n, record["girth"], record["farness_lb"],
             record["views_are_trees"])
        )
        table.add_row(
            n,
            m,
            record["girth"],
            record["target_girth"],
            record["removed_edges"] / max(1, m + record["removed_edges"]),
            record["farness_lb"],
            record["blind_radius"],
            record["views_are_trees"],
        )
    ns = [r[0] for r in rows]
    girths = [float(r[1]) for r in rows]
    fit = linear_fit([math.log2(n) for n in ns], girths)
    table.add_row("fit", f"girth ~ {fit.slope:.2f}*log2(n)", "-", "-", "-",
                  f"R^2={fit.r_squared:.2f}", "-", "-")
    save_table(table, "e11_lower_bound.md")
    return rows


def test_instances_remain_far(lower_bound_table):
    for n, _girth, farness, _trees in lower_bound_table:
        assert farness > 0.25, (n, farness)


def test_views_are_trees(lower_bound_table):
    for n, _girth, _farness, trees in lower_bound_table:
        assert trees, n


def test_girth_grows_with_n(lower_bound_table):
    girths = [g for _n, g, _f, _t in lower_bound_table]
    assert girths[-1] >= girths[0]
    assert girths[-1] >= 5


def test_benchmark_construction(benchmark, lower_bound_table):
    inst = benchmark(lambda: lower_bound_instance(512, seed=1))
    assert inst.farness_lower_bound > 0
