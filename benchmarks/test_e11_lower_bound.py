"""E11 (Figure 4) -- Theorem 2: the Omega(log n) lower-bound construction.

Claims reproduced (Claims 11 & 12): the surgically-thinned G(n, c/n) is
simultaneously (a) certified Theta(1)-far from planarity and (b) of girth
Omega(log n), so every node's view within ``ceil(girth/2) - 1`` rounds is
a tree.  A tree view also occurs in a forest -- a planar graph on which a
one-sided tester must accept -- hence no one-sided tester running fewer
rounds can reject these far graphs.  The girth series grows with log n.
"""

from __future__ import annotations

import math

import pytest

from _harness import quick_mode, save_table
from repro.analysis import linear_fit
from repro.analysis.tables import Table
from repro.graphs import all_views_are_trees, lower_bound_instance

SIZES = (256, 512, 1024) if quick_mode() else (256, 512, 1024, 2048, 4096)


@pytest.fixture(scope="module")
def lower_bound_table():
    table = Table(
        "E11: Theorem 2 hard instances -- girth grows with log n while the "
        "graph stays certified-far",
        ["n", "m", "girth", "target", "removed (frac of m)", "farness lb",
         "blind radius", "views are trees"],
    )
    rows = []
    for n in SIZES:
        inst = lower_bound_instance(n, seed=0)
        radius = inst.indistinguishability_radius
        trees = all_views_are_trees(inst.graph, radius)
        m = inst.graph.number_of_edges()
        rows.append((n, inst.girth, inst.farness_lower_bound, trees))
        table.add_row(
            n,
            m,
            inst.girth,
            inst.target_girth,
            inst.removed_edges / max(1, m + inst.removed_edges),
            inst.farness_lower_bound,
            radius,
            trees,
        )
    ns = [r[0] for r in rows]
    girths = [float(r[1]) for r in rows]
    fit = linear_fit([math.log2(n) for n in ns], girths)
    table.add_row("fit", f"girth ~ {fit.slope:.2f}*log2(n)", "-", "-", "-",
                  f"R^2={fit.r_squared:.2f}", "-", "-")
    save_table(table, "e11_lower_bound.md")
    return rows


def test_instances_remain_far(lower_bound_table):
    for n, _girth, farness, _trees in lower_bound_table:
        assert farness > 0.25, (n, farness)


def test_views_are_trees(lower_bound_table):
    for n, _girth, _farness, trees in lower_bound_table:
        assert trees, n


def test_girth_grows_with_n(lower_bound_table):
    girths = [g for _n, g, _f, _t in lower_bound_table]
    assert girths[-1] >= girths[0]
    assert girths[-1] >= 5


def test_benchmark_construction(benchmark, lower_bound_table):
    inst = benchmark(lambda: lower_bound_instance(512, seed=1))
    assert inst.farness_lower_bound > 0
