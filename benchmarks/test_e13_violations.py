"""E13 (Table 9) -- the violating-edge machinery (Definition 7, Claims 8-10).

Claims reproduced / audited:

* **corner criterion, completeness**: on planar graphs with the LR
  embedding, the number of violating edges is exactly 0 -- the
  foundation of one-sided error;
* **corner criterion, soundness (Corollary 9)**: on certified
  gamma-far graphs the violating-edge count is at least gamma * m;
* **paper-literal preorder criterion**: Claim 10 as printed does NOT
  hold -- planar graphs exhibit preorder interlacements (3x3 grid and
  every tested family); this reproduction finding motivates the corner
  refinement (see DESIGN.md).
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_far, make_planar
from repro.planarity import check_planarity, identity_rotation
from repro.testers import count_violating
from repro.testers.labels import (
    corner_intervals,
    deterministic_bfs_tree,
    embedding_ranks,
    euler_tour_positions,
    non_tree_intervals,
)

N = 150 if quick_mode() else 300
PLANAR = ("grid", "tri-grid", "apollonian", "delaunay", "outerplanar")
FAR = ("gnp", "planted-k5", "planted-k33", "planar-plus")


def analyze(graph, rotation):
    parents, _ = deterministic_bfs_tree(graph, 0)
    positions, universe = euler_tour_positions(graph, 0, rotation, parents)
    corner = [(a, b) for a, b, _u, _v in corner_intervals(graph, parents, positions)]
    ranks = embedding_ranks(graph, 0, rotation, parents)
    preorder = [(a, b) for a, b, _u, _v in non_tree_intervals(graph, parents, ranks)]
    return (
        count_violating(corner, universe=universe),
        count_violating(preorder, universe=graph.number_of_nodes()),
        len(corner),
    )


@pytest.fixture(scope="module")
def violations_table():
    table = Table(
        "E13: violating edges -- corner criterion vs paper-literal preorder",
        ["graph", "planar?", "certified farness", "non-tree edges",
         "violating (corner)", "violating (preorder)", "corner/m"],
    )
    planar_corner_total = 0
    far_rows = []
    for family in PLANAR:
        graph = make_planar(family, N, seed=0)
        emb = check_planarity(graph).embedding
        corner, preorder, non_tree = analyze(graph, emb)
        planar_corner_total += corner
        table.add_row(
            family, True, 0.0, non_tree, corner, preorder,
            corner / graph.number_of_edges(),
        )
    for family in FAR:
        graph, certified = make_far(family, N, seed=0)
        rot = identity_rotation(graph)
        corner, preorder, non_tree = analyze(graph, rot)
        m = graph.number_of_edges()
        far_rows.append((family, corner, certified, m))
        table.add_row(
            family, False, certified, non_tree, corner, preorder, corner / m
        )
    save_table(table, "e13_violations.md")
    return planar_corner_total, far_rows


def test_corner_criterion_zero_on_planar(violations_table):
    planar_corner_total, _far = violations_table
    assert planar_corner_total == 0


def test_corollary9_far_graphs(violations_table):
    _z, far_rows = violations_table
    for family, corner, certified, m in far_rows:
        assert corner >= certified * m - 1e-9, (family, corner, certified * m)


def test_benchmark_violation_sweep(benchmark, violations_table):
    graph, _c = make_far("gnp", N, seed=0)
    rot = identity_rotation(graph)
    corner, _pre, _nt = benchmark(lambda: analyze(graph, rot))
    assert corner > 0
