"""E13 (Table 9) -- the violating-edge machinery (Definition 7, Claims 8-10).

Claims reproduced / audited:

* **corner criterion, completeness**: on planar graphs with the LR
  embedding, the number of violating edges is exactly 0 -- the
  foundation of one-sided error;
* **corner criterion, soundness (Corollary 9)**: on certified
  gamma-far graphs the violating-edge count is at least gamma * m;
* **paper-literal preorder criterion**: Claim 10 as printed does NOT
  hold -- planar graphs exhibit preorder interlacements (3x3 grid and
  every tested family); this reproduction finding motivates the corner
  refinement (see DESIGN.md).

The family sweep runs as ``violation_audit`` jobs on the
:mod:`repro.runtime` engine: planar specs analyze their LR embedding,
far specs the identity rotation plus their construction-certified
farness (``REPRO_BENCH_BACKEND=process`` parallelizes the families).
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis.tables import Table
from repro.runtime import JobSpec, run_jobs

N = 150 if quick_mode() else 300
PLANAR = ("grid", "tri-grid", "apollonian", "delaunay", "outerplanar")
FAR = ("gnp", "planted-k5", "planted-k33", "planar-plus")


@pytest.fixture(scope="module")
def violations_table():
    specs = [
        JobSpec.make("violation_audit", family=family, n=N, seed=0)
        for family in PLANAR
    ] + [
        JobSpec.make("violation_audit", far=family, n=N, seed=0)
        for family in FAR
    ]
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())
    records = list(batch)

    table = Table(
        "E13: violating edges -- corner criterion vs paper-literal preorder",
        ["graph", "planar?", "certified farness", "non-tree edges",
         "violating (corner)", "violating (preorder)", "corner/m"],
    )
    planar_corner_total = 0
    far_rows = []
    for record in records:
        corner = record["violating_corner"]
        m = record["m"]
        if record["planar"]:
            planar_corner_total += corner
        else:
            far_rows.append(
                (record["family"], corner, record["certified_farness"], m)
            )
        table.add_row(
            record["family"],
            record["planar"],
            record["certified_farness"],
            record["non_tree_edges"],
            corner,
            record["violating_preorder"],
            corner / m,
        )
    save_table(table, "e13_violations.md")
    return planar_corner_total, far_rows


def test_corner_criterion_zero_on_planar(violations_table):
    planar_corner_total, _far = violations_table
    assert planar_corner_total == 0


def test_corollary9_far_graphs(violations_table):
    _z, far_rows = violations_table
    for family, corner, certified, m in far_rows:
        assert corner >= certified * m - 1e-9, (family, corner, certified * m)


def test_benchmark_violation_sweep(benchmark, violations_table):
    from repro.runtime import run_job

    spec = JobSpec.make("violation_audit", far="gnp", n=N, seed=0)
    record = benchmark(lambda: run_job(spec))
    assert record["violating_corner"] > 0
