"""E2 (Table 2) -- Theorem 1 soundness: epsilon-far graphs are rejected w.h.p.

Claim reproduced: "if G is epsilon-far from being planar, then with
probability 1 - 1/poly(n) at least one node outputs reject".  Every
instance carries a *certified* farness lower bound; the tester runs with
epsilon slightly below the certificate, and the measured rejection rate
(with a Wilson confidence interval) should be ~1.

The trial grid executes on the :mod:`repro.runtime` engine (see
``REPRO_BENCH_BACKEND``): each family pins its graph via ``graph_seed``
so all trials replay the *same* certified-far instance while the tester
seed varies per trial.
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis import wilson_interval
from repro.analysis.tables import Table
from repro.graphs import make_far
from repro.runtime import JobSpec, run_jobs
from repro.testers import test_planarity as run_planarity

FAMILIES = ("gnp", "regular", "planted-k5", "planted-k33", "planar-plus")
N = 200
TRIALS = 8 if quick_mode() else 20


@pytest.fixture(scope="module")
def detection_table():
    table = Table(
        "E2: detection of certified epsilon-far graphs",
        [
            "family",
            "n",
            "certified farness",
            "epsilon used",
            "trials",
            "rejected",
            "rate (95% CI)",
            "stage",
        ],
    )
    cells = []
    specs = []
    for family in FAMILIES:
        # Generation is cheap at n=200; regenerating here (rather than
        # threading the graph through the specs) keeps the certificate
        # available for the epsilon choice and the table.
        graph, certified = make_far(family, N, seed=0)
        epsilon = min(0.3, max(0.05, certified * 0.9))
        cells.append((family, graph.number_of_nodes(), certified, epsilon))
        specs.extend(
            JobSpec.make(
                "test_planarity",
                far=family,
                n=N,
                seed=seed,
                graph_seed=0,
                epsilon=epsilon,
            )
            for seed in range(TRIALS)
        )
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())
    records = list(batch)

    rates = {}
    for index, (family, n, certified, epsilon) in enumerate(cells):
        cell = records[index * TRIALS : (index + 1) * TRIALS]
        rejected = sum(not record["accepted"] for record in cell)
        stages = {
            record["rejected_stage"] for record in cell if not record["accepted"]
        }
        lo, hi = wilson_interval(rejected, TRIALS)
        rates[family] = rejected / TRIALS
        table.add_row(
            family,
            n,
            certified,
            epsilon,
            TRIALS,
            rejected,
            f"{rejected / TRIALS:.2f} [{lo:.2f}, {hi:.2f}]",
            "/".join(sorted(stages)) or "-",
        )
    save_table(table, "e02_detection.md")
    return rates


def test_detection_rate_high(detection_table):
    for family, rate in detection_table.items():
        assert rate >= 0.9, (family, rate)


def test_benchmark_tester_on_far(benchmark, detection_table):
    graph, certified = make_far("planted-k5", N, seed=0)
    epsilon = min(0.3, certified * 0.9)
    result = benchmark(lambda: run_planarity(graph, epsilon=epsilon, seed=1))
    assert not result.accepted
