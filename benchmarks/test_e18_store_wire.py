"""E18 -- binary columnar store + zero-copy wire format vs JSONL.

Claim reproduced (engineering, not paper): packing fleet records into
shape-addressed binary entries makes every byte-bound runtime path
cheaper than the legacy JSONL encoding while decoding to identical
records.  Four legs, each gated against the JSONL control on the same
record population:

* **resume merge** -- a fresh store open scans every shard to rebuild
  the key index (the ``sweep --resume`` hot path).  Binary scans read
  7-byte entry headers and skip the payloads; JSONL must
  ``json.loads`` every line.  Gate: >= 3x.
* **GC / compaction** -- newest-wins shard rewrites splice entry bytes
  for binary sources; JSONL parses and re-serializes each survivor.
  Gate: >= 3x.
* **shard bytes** -- live on-disk footprint after compaction
  (``.idx`` sidecars counted against the binary side).  Gate: >= 2x
  smaller.
* **wire bytes** -- one result frame per record, binary
  length-prefixed frames with packed payloads vs the retired
  JSON-line protocol.  Gate: >= 2x smaller.

Decode identity across formats is part of the claim: both stores must
dump byte-for-byte equal ``(key, stamp, record)`` triples.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.runtime import ShardedStore
from repro.runtime.codec import (
    GLOBAL_SHAPES,
    encode_record,
    encode_wire_frame,
    frame_shapes,
)

ENTRIES = 1500 if quick_mode() else 6000
REPEATS = 3 if quick_mode() else 5
SHARDS = 4
RESUME_GATE = 3.0
GC_GATE = 3.0
SHARD_BYTES_GATE = 2.0
WIRE_BYTES_GATE = 2.0

FAMILIES = ("grid", "triangulation", "erdos_renyi")
EPSILONS = (0.5, 0.25, 0.125)


def _key(i: int) -> str:
    return hashlib.sha256(b"e18:%d" % i).hexdigest()


def _record(i: int) -> dict:
    """A sweep-shaped record: the field mix real stores hold."""
    n = 64 + (i % 40) * 16
    return {
        "kind": "test_planarity",
        "family": FAMILIES[i % 3],
        "n": n,
        "seed": i % 25,
        "graph_seed": i % 25,
        "epsilon": EPSILONS[i % 3],
        "far": (i % 3) == 0,
        "planar": (i % 3) != 0,
        "accepted": (i % 5) != 0,
        "rounds": 2 + (i % 7) + (i % 89) / 89.0,
        "queries": 12 * n + i % 97,
        "messages": 40 * n + i % 1013,
        "seconds": (i % 211 + 1) / 8191.0,
        "method": "combinatorial" if i % 2 else "kuratowski",
        "fingerprint": hashlib.sha256(b"g:%d" % (i % 50)).hexdigest(),
        "config_digest": hashlib.sha256(b"c:%d" % (i % 9)).hexdigest(),
    }


def _data_bytes(root) -> int:
    suffixes = (".rbin", ".jsonl", ".idx")
    return sum(
        p.stat().st_size
        for p in root.iterdir()
        if p.suffix in suffixes
    )


def _time_resume(root) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        reopened = ShardedStore(root, shards=SHARDS)
        count = len(reopened)  # forces the full shard scan
        best = min(best, time.perf_counter() - start)
        assert count == ENTRIES
    return best


def _time_gc(root, tmp_path) -> float:
    best = float("inf")
    for rep in range(REPEATS):
        copy = tmp_path / f"gc-{root.name}-{rep}"
        shutil.copytree(root, copy)
        for idx in copy.glob("*.idx"):
            idx.unlink()  # time the rewrite, not a sidecar shortcut
        victim = ShardedStore(copy, shards=SHARDS)
        start = time.perf_counter()
        report = victim.gc(ttl=None, max_bytes=None)
        best = min(best, time.perf_counter() - start)
        assert report.bytes_reclaimed > 0  # the dups really burned off
    return best


def _wire_bytes_binary(records) -> int:
    sent = set()
    total = 0
    for i, record in enumerate(records):
        payload, _shape = encode_record(record, GLOBAL_SHAPES)
        frame = {
            "op": "result",
            "id": i,
            "key": _key(i),
            "record_pkd": payload,
            "seconds": 0.01,
            "hit": False,
            "shapes": frame_shapes(iter((payload,)), sent, GLOBAL_SHAPES),
        }
        total += len(encode_wire_frame(frame))
    return total


def _wire_bytes_json(records) -> int:
    total = 0
    for i, record in enumerate(records):
        line = json.dumps(
            {
                "op": "result",
                "id": i,
                "key": _key(i),
                "record": record,
                "seconds": 0.01,
                "hit": False,
            },
            separators=(",", ":"),
        )
        total += len(line.encode("utf-8")) + 1
    return total


@pytest.fixture(scope="module")
def store_wire_table(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("e18")
    roots = {}
    resume_s = {}
    gc_s = {}
    shard_bytes = {}
    for fmt in ("jsonl", "rbin"):
        root = tmp_path / fmt
        store = ShardedStore(root, shards=SHARDS, record_format=fmt)
        for i in range(ENTRIES):
            store.put(_key(i), _record(i))
        # Every key again, newer: the GC leg then runs against a
        # half-dead file, which is the state that actually triggers
        # a compaction (compact_factor fires when appends reach
        # ~2x the live count).
        for i in range(ENTRIES):
            store.put(_key(i), _record(i))
        roots[fmt] = root
        resume_s[fmt] = _time_resume(root)
        gc_s[fmt] = _time_gc(root, tmp_path)
        # Footprint after compaction: live entries only, and the
        # binary side pays for its .idx sidecars.
        ShardedStore(root, shards=SHARDS).gc(ttl=None, max_bytes=None)
        shard_bytes[fmt] = _data_bytes(root)

    records = [_record(i) for i in range(ENTRIES)]
    wire_bytes = {
        "jsonl": _wire_bytes_json(records),
        "rbin": _wire_bytes_binary(records),
    }

    ratios = {
        "resume_speedup": resume_s["jsonl"] / resume_s["rbin"],
        "gc_speedup": gc_s["jsonl"] / gc_s["rbin"],
        "shard_bytes_ratio": shard_bytes["jsonl"] / shard_bytes["rbin"],
        "wire_bytes_ratio": wire_bytes["jsonl"] / wire_bytes["rbin"],
    }

    dumps = {
        fmt: sorted(ShardedStore(root, shards=SHARDS).dump())
        for fmt, root in roots.items()
    }

    table = Table(
        f"E18: binary store + wire vs JSONL ({ENTRIES} records, "
        f"{SHARDS} shards, best of {REPEATS})",
        ["format", "resume ms", "gc ms", "shard KiB", "wire KiB"],
    )
    for fmt in ("jsonl", "rbin"):
        table.add_row(
            fmt,
            round(resume_s[fmt] * 1e3, 2),
            round(gc_s[fmt] * 1e3, 2),
            round(shard_bytes[fmt] / 1024, 1),
            round(wire_bytes[fmt] / 1024, 1),
        )
    table.add_row(
        "jsonl/rbin",
        f"{ratios['resume_speedup']:.2f}x",
        f"{ratios['gc_speedup']:.2f}x",
        f"{ratios['shard_bytes_ratio']:.2f}x",
        f"{ratios['wire_bytes_ratio']:.2f}x",
    )

    save_table(
        table,
        "e18_store_wire.md",
        metrics={
            "entries": ENTRIES,
            "shards": SHARDS,
            "repeats": REPEATS,
            "resume_jsonl_s": round(resume_s["jsonl"], 6),
            "resume_rbin_s": round(resume_s["rbin"], 6),
            "gc_jsonl_s": round(gc_s["jsonl"], 6),
            "gc_rbin_s": round(gc_s["rbin"], 6),
            "shard_bytes_jsonl": shard_bytes["jsonl"],
            "shard_bytes_rbin": shard_bytes["rbin"],
            "wire_bytes_jsonl": wire_bytes["jsonl"],
            "wire_bytes_rbin": wire_bytes["rbin"],
            "resume_speedup": round(ratios["resume_speedup"], 3),
            "gc_speedup": round(ratios["gc_speedup"], 3),
            "shard_bytes_ratio": round(ratios["shard_bytes_ratio"], 3),
            "wire_bytes_ratio": round(ratios["wire_bytes_ratio"], 3),
            "resume_gate": RESUME_GATE,
            "gc_gate": GC_GATE,
            "shard_bytes_gate": SHARD_BYTES_GATE,
            "wire_bytes_gate": WIRE_BYTES_GATE,
        },
    )
    return ratios, dumps


def test_resume_scan_at_least_3x(store_wire_table):
    ratios, _dumps = store_wire_table
    speedup = ratios["resume_speedup"]
    assert speedup >= RESUME_GATE, f"resume scan only {speedup:.2f}x"


def test_gc_at_least_3x(store_wire_table):
    ratios, _dumps = store_wire_table
    speedup = ratios["gc_speedup"]
    assert speedup >= GC_GATE, f"gc rewrite only {speedup:.2f}x"


def test_shard_bytes_at_least_2x_smaller(store_wire_table):
    ratios, _dumps = store_wire_table
    ratio = ratios["shard_bytes_ratio"]
    assert ratio >= SHARD_BYTES_GATE, f"shards only {ratio:.2f}x smaller"


def test_wire_bytes_at_least_2x_smaller(store_wire_table):
    ratios, _dumps = store_wire_table
    ratio = ratios["wire_bytes_ratio"]
    assert ratio >= WIRE_BYTES_GATE, f"frames only {ratio:.2f}x smaller"


def test_formats_decode_identically(store_wire_table):
    _ratios, dumps = store_wire_table
    assert len(dumps["rbin"]) == ENTRIES
    jsonl_view = [(key, record) for key, _stamp, record in dumps["jsonl"]]
    rbin_view = [(key, record) for key, _stamp, record in dumps["rbin"]]
    assert jsonl_view == rbin_view
