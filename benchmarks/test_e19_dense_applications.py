"""E19 -- dense applications/spanner fast path + batched partition kernels.

Claim reproduced (engineering, not paper): the last scalar hot loops of
the applications layer -- the Corollary 17 spanner walk, the per-pair
stretch fold, and the partition-emulation protocols -- run as array
programs with bit-identical outputs.  Gated (and run in CI's
bench-smoke job):

* ``build_spanner(engine="dense")`` (CSR edge arrays straight off the
  dense partition state) is >= 3x the legacy networkx walk;
* the batched-BFS ``measure_stretch`` is >= 3x the legacy per-pair
  fold at the same sample;
* the ``forest`` and ``cv`` batch kernels run partition-emulation
  trials >= 2x faster per trial than the scalar dense plane;
* every compared pair is bit-identical (``SpannerResult`` counts and
  edge sets, the stretch float, per-trial outputs and ledger totals --
  the full differential suites live in
  ``tests/test_applications_dense.py`` / ``tests/test_congest_batched.py``).

The gate sizes are fixed regardless of ``REPRO_BENCH_QUICK`` -- the
speedup claims are about those scales; quick mode trims repeats and
the batch width.
"""

from __future__ import annotations

import time

import networkx as nx
import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.applications import build_spanner, measure_stretch
from repro.congest import (
    CongestNetwork,
    compile_topology,
    reset_topology_stats,
    run_batched,
    topology_stats,
)
from repro.congest.programs import BarenboimElkinProgram
from repro.congest.programs.cole_vishkin import (
    ColeVishkinProgram,
    cv_schedule,
    min_neighbor_parents,
)
from repro.congest.programs.forest_decomposition import (
    barenboim_elkin_round_budget,
)
from repro.runtime import JobSpec, ResultCache, SerialBackend, run_jobs

N = 1500
EPSILON = 0.1
SAMPLE = 16
KERNEL_N = 300
KERNEL_EDGE_PROB = 0.05
BATCH = 16 if quick_mode() else 64
REPEATS = 2 if quick_mode() else 4

BUILD_GATE = 3.0
STRETCH_GATE = 3.0
KERNEL_GATE = 2.0

RESULT_FIELDS = (
    "rounds",
    "halted",
    "total_messages",
    "total_bits",
    "max_message_bits",
    "over_budget_messages",
)


def _best(fn):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _scalar_kernel(program, network):
    if program == "forest":
        budget = barenboim_elkin_round_budget(network.n)
        return network.run(
            BarenboimElkinProgram,
            max_rounds=budget + 3,
            config={"alpha": 3, "budget": budget},
            strict_bandwidth=True,
            profile="fast",
        )
    schedule = cv_schedule(max(network.graph.nodes(), default=1))
    return network.run(
        ColeVishkinProgram,
        max_rounds=len(schedule) + 3,
        config={
            "parents": min_neighbor_parents(network.graph),
            "schedule": schedule,
        },
        strict_bandwidth=True,
        profile="fast",
    )


@pytest.fixture(scope="module")
def applications_table():
    graph = make_planar_graph()
    compile_topology(graph).edge_arrays()  # timings cover the sweeps only

    # -- spanner build: legacy walk vs CSR assembly ----------------------
    legacy_build_s, legacy = _best(
        lambda: build_spanner(graph, epsilon=EPSILON, engine="legacy")
    )
    dense_build_s, dense = _best(
        lambda: build_spanner(graph, epsilon=EPSILON, engine="dense")
    )
    build_speedup = legacy_build_s / dense_build_s
    assert dense.tree_edges == legacy.tree_edges
    assert dense.connector_edges == legacy.connector_edges
    assert dense.guaranteed_stretch == legacy.guaranteed_stretch
    assert dense.size == legacy.size
    assert dense.rounds == legacy.rounds
    assert {frozenset(e) for e in dense.dense.edges()} == {
        frozenset(e) for e in legacy.spanner.edges()
    }

    # -- stretch: per-pair fold vs batched CSR BFS -----------------------
    legacy_stretch_s, legacy_stretch = _best(
        lambda: measure_stretch(
            graph, legacy.spanner, sample_nodes=SAMPLE, seed=0,
            engine="legacy",
        )
    )
    dense_stretch_s, dense_stretch = _best(
        lambda: measure_stretch(
            graph, dense.dense, sample_nodes=SAMPLE, seed=0, engine="dense"
        )
    )
    stretch_speedup = legacy_stretch_s / dense_stretch_s
    assert dense_stretch == legacy_stretch

    # -- forest / cv batch kernels vs the scalar dense plane -------------
    kernel_graph = nx.gnp_random_graph(KERNEL_N, KERNEL_EDGE_PROB, seed=0)
    topology = compile_topology(kernel_graph)
    network = CongestNetwork(kernel_graph, seed=0)
    kernel_rows = []
    kernel_speedups = {}
    for program in ("forest", "cv"):
        scalar_s, scalar = _best(lambda p=program: _scalar_kernel(p, network))
        batched_s, results = _best(
            lambda p=program: run_batched(p, [topology] * BATCH)
        )
        per_trial_s = batched_s / BATCH
        speedup = scalar_s / per_trial_s
        kernel_speedups[program] = speedup
        for batched in results:
            for field in RESULT_FIELDS:
                assert getattr(batched, field) == getattr(scalar, field), (
                    program,
                    field,
                )
            assert batched.outputs == scalar.outputs
        kernel_rows.append(
            (program, scalar_s, batched_s, per_trial_s, speedup)
        )

    table = Table(
        f"E19: dense applications on delaunay n={N} "
        f"+ batched kernels on G({KERNEL_N}, {KERNEL_EDGE_PROB}) x{BATCH}",
        ["stage", "legacy/scalar s", "dense/batched s", "speedup", "gate"],
    )
    table.add_row(
        "spanner build",
        round(legacy_build_s, 4),
        round(dense_build_s, 4),
        round(build_speedup, 2),
        f">={BUILD_GATE}x",
    )
    table.add_row(
        f"stretch ({SAMPLE} sources)",
        round(legacy_stretch_s, 4),
        round(dense_stretch_s, 4),
        round(stretch_speedup, 2),
        f">={STRETCH_GATE}x",
    )
    for program, scalar_s, batched_s, per_trial_s, speedup in kernel_rows:
        table.add_row(
            f"{program} kernel (per trial)",
            round(scalar_s, 4),
            round(per_trial_s, 5),
            round(speedup, 2),
            f">={KERNEL_GATE}x",
        )

    # Runtime leg: a cv sweep cell coalesces into one simulate_batch job
    # over one compiled topology, expanding to scalar-identical records.
    reset_topology_stats()
    specs = [
        JobSpec.make(
            "simulate_program",
            family="delaunay",
            n=128,
            seed=trial,
            graph_seed=0,
            program="cv",
            profile="fast",
        )
        for trial in range(8)
    ]
    batch = run_jobs(
        specs, backend=SerialBackend(), cache=ResultCache(), batch=8
    )
    compiled = topology_stats().compiled
    table.add_row(
        "cv sweep (8 trials, --batch 8)",
        "-",
        "-",
        f"{compiled} topology compile",
        "==1",
    )

    save_table(
        table,
        "e19_dense_applications.md",
        metrics={
            "n": N,
            "epsilon": EPSILON,
            "sample_nodes": SAMPLE,
            "kernel_n": KERNEL_N,
            "kernel_edge_prob": KERNEL_EDGE_PROB,
            "batch": BATCH,
            "repeats": REPEATS,
            "legacy_build_s": round(legacy_build_s, 6),
            "dense_build_s": round(dense_build_s, 6),
            "build_speedup": round(build_speedup, 3),
            "legacy_stretch_s": round(legacy_stretch_s, 6),
            "dense_stretch_s": round(dense_stretch_s, 6),
            "stretch_speedup": round(stretch_speedup, 3),
            "forest_kernel_speedup": round(kernel_speedups["forest"], 3),
            "cv_kernel_speedup": round(kernel_speedups["cv"], 3),
            "build_gate": BUILD_GATE,
            "stretch_gate": STRETCH_GATE,
            "kernel_gate": KERNEL_GATE,
        },
    )
    return build_speedup, stretch_speedup, kernel_speedups, compiled, batch


def make_planar_graph():
    from repro.graphs import make_planar

    return make_planar("delaunay", N, seed=0)


def test_dense_spanner_build_gate(applications_table):
    build_speedup, _stretch, _kernels, _compiled, _batch = applications_table
    assert build_speedup >= BUILD_GATE, (
        f"dense spanner build only {build_speedup:.2f}x the legacy walk"
    )


def test_dense_stretch_gate(applications_table):
    _build, stretch_speedup, _kernels, _compiled, _batch = applications_table
    assert stretch_speedup >= STRETCH_GATE, (
        f"batched stretch only {stretch_speedup:.2f}x the per-pair fold"
    )


def test_batched_kernel_gates(applications_table):
    _build, _stretch, kernels, _compiled, _batch = applications_table
    for program, speedup in kernels.items():
        assert speedup >= KERNEL_GATE, (
            f"{program} kernel only {speedup:.2f}x per trial"
        )


def test_cv_sweep_coalesces_and_expands(applications_table):
    _build, _stretch, _kernels, compiled, batch = applications_table
    assert compiled == 1
    assert batch.executed == 8
    assert len(batch.records) == 8
    assert all(r["kind"] == "simulate_program" for r in batch.records)
    assert all(r["program"] == "cv" for r in batch.records)


def test_benchmark_dense_spanner(benchmark, applications_table):
    graph = make_planar_graph()
    result = benchmark(
        lambda: build_spanner(graph, epsilon=EPSILON, engine="dense")
    )
    assert result.dense is not None
