"""E10 (Table 7) -- Corollary 17: spanners of minor-free graphs.

Claims reproduced: the partition-based spanner has ``(1 + O(eps)) n``
edges and ``poly(1/eps)`` stretch, deterministically.  Baselines: the
MPX/Elkin-Neiman cluster spanner (the paper's comparison point: its
ultra-sparse regime needs ``k = omega(log n)`` rounds) and the greedy
(2k-1)-spanner (sequential size yardstick).

Each family's rows run as ``spanner`` (Corollary 17) and
``spanner_baseline`` (MPX / greedy) jobs on the :mod:`repro.runtime`
engine (``REPRO_BENCH_BACKEND=process`` parallelizes across cells).
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis.tables import Table
from repro.applications import build_spanner
from repro.graphs import make_planar
from repro.runtime import JobSpec, run_jobs

FAMILIES = ("grid", "delaunay", "tri-grid")
EPSILONS = (0.3, 0.1)
N = 250 if quick_mode() else 500
STRETCH_SAMPLES = 12


@pytest.fixture(scope="module")
def spanner_table():
    specs = []
    for family in FAMILIES:
        for epsilon in EPSILONS:
            specs.append(
                JobSpec.make(
                    "spanner",
                    family=family,
                    n=N,
                    seed=0,
                    epsilon=epsilon,
                    sample_nodes=STRETCH_SAMPLES,
                )
            )
        specs.append(
            JobSpec.make(
                "spanner_baseline",
                family=family,
                n=N,
                seed=0,
                method="mpx",
                beta=0.3,
                sample_nodes=STRETCH_SAMPLES,
            )
        )
        specs.append(
            JobSpec.make(
                "spanner_baseline",
                family=family,
                n=N,
                seed=0,
                method="greedy",
                stretch=5,
                sample_nodes=STRETCH_SAMPLES,
            )
        )
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())
    records = list(batch)

    table = Table(
        f"E10: spanner size and stretch (n={N})",
        ["family", "algorithm", "epsilon/beta", "edges", "size/n",
         "measured stretch", "guarantee", "rounds"],
    )
    size_violations = 0
    index = 0
    for family in FAMILIES:
        for epsilon in EPSILONS:
            record = records[index]
            index += 1
            n = record["n"]
            if record["spanner_edges"] > (1 + 3 * epsilon) * n:
                size_violations += 1
            table.add_row(
                family, "partition (Cor 17)", epsilon,
                record["spanner_edges"], record["spanner_edges"] / n,
                record["measured_stretch"], record["guaranteed_stretch"],
                record["rounds"],
            )
        mpx = records[index]
        index += 1
        table.add_row(
            family, "MPX cluster", 0.3, mpx["spanner_edges"],
            mpx["size_per_n"], mpx["measured_stretch"],
            mpx["guaranteed_stretch"], mpx["rounds"],
        )
        greedy = records[index]
        index += 1
        table.add_row(
            family, "greedy (2k-1)=5", "-", greedy["spanner_edges"],
            greedy["size_per_n"], greedy["measured_stretch"],
            greedy["guaranteed_stretch"], greedy["rounds"],
        )
    save_table(table, "e10_spanner.md")
    return size_violations


def test_size_bound_respected(spanner_table):
    assert spanner_table == 0


def test_benchmark_spanner_build(benchmark, spanner_table):
    graph = make_planar("delaunay", N, seed=0)
    result = benchmark(lambda: build_spanner(graph, epsilon=0.2))
    assert result.size > 0
