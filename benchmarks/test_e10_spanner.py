"""E10 (Table 7) -- Corollary 17: spanners of minor-free graphs.

Claims reproduced: the partition-based spanner has ``(1 + O(eps)) n``
edges and ``poly(1/eps)`` stretch, deterministically.  Baselines: the
MPX/Elkin-Neiman cluster spanner (the paper's comparison point: its
ultra-sparse regime needs ``k = omega(log n)`` rounds) and the greedy
(2k-1)-spanner (sequential size yardstick).
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.applications import build_spanner, measure_stretch
from repro.baselines import cluster_spanner, greedy_spanner
from repro.graphs import make_planar

FAMILIES = ("grid", "delaunay", "tri-grid")
EPSILONS = (0.3, 0.1)
N = 250 if quick_mode() else 500
STRETCH_SAMPLES = 12


@pytest.fixture(scope="module")
def spanner_table():
    table = Table(
        f"E10: spanner size and stretch (n={N})",
        ["family", "algorithm", "epsilon/beta", "edges", "size/n",
         "measured stretch", "guarantee", "rounds"],
    )
    size_violations = 0
    for family in FAMILIES:
        graph = make_planar(family, N, seed=0)
        n = graph.number_of_nodes()
        for epsilon in EPSILONS:
            result = build_spanner(graph, epsilon=epsilon)
            stretch = measure_stretch(
                graph, result.spanner, sample_nodes=STRETCH_SAMPLES, seed=0
            )
            if result.size > (1 + 3 * epsilon) * n:
                size_violations += 1
            table.add_row(
                family, "partition (Cor 17)", epsilon, result.size,
                result.size / n, stretch, result.guaranteed_stretch,
                result.rounds,
            )
        # baselines at beta = 0.3
        spanner, mpx = cluster_spanner(graph, beta=0.3, seed=0)
        stretch = measure_stretch(graph, spanner, sample_nodes=STRETCH_SAMPLES, seed=0)
        table.add_row(
            family, "MPX cluster", 0.3, spanner.number_of_edges(),
            spanner.number_of_edges() / n, stretch, "O(log n / beta)",
            mpx.rounds,
        )
        greedy = greedy_spanner(graph, stretch=5)
        stretch = measure_stretch(graph, greedy, sample_nodes=STRETCH_SAMPLES, seed=0)
        table.add_row(
            family, "greedy (2k-1)=5", "-", greedy.number_of_edges(),
            greedy.number_of_edges() / n, stretch, 5, "(sequential)",
        )
    save_table(table, "e10_spanner.md")
    return size_violations


def test_size_bound_respected(spanner_table):
    assert spanner_table == 0


def test_benchmark_spanner_build(benchmark, spanner_table):
    graph = make_planar("delaunay", N, seed=0)
    result = benchmark(lambda: build_spanner(graph, epsilon=0.2))
    assert result.size > 0
