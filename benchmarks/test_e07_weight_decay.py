"""E7 (Figure 3) -- per-phase cut-weight decay (Claims 1 and 14, Lemma 13).

Claims reproduced: the deterministic merging step multiplies the cut
weight by at most ``1 - 1/(12 alpha)`` per phase (we assert the
conservative provable ``1 - 1/(36 alpha)``), the randomized one by
``1 - 1/(64 alpha)`` w.h.p.  The measured decay factors beat both bounds
comfortably -- this is the series behind the paper's O(log 1/eps) phase
count.
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis import geometric_mean
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.partition import partition_randomized, partition_stage1

ALPHA = 3
DET_BOUND = 1 - 1 / (36 * ALPHA)
RAND_BOUND = 1 - 1 / (64 * ALPHA)
FAMILIES = ("grid", "tri-grid", "apollonian", "delaunay")
N = 300 if quick_mode() else 600


@pytest.fixture(scope="module")
def decay_table():
    table = Table(
        "E7: per-phase cut decay factors (lower = faster progress)",
        ["family", "algorithm", "phases", "min decay", "geomean decay",
         "max decay", "provable bound"],
    )
    worst = {"det": 0.0, "rand": 0.0}
    for family in FAMILIES:
        graph = make_planar(family, N, seed=0)
        det = partition_stage1(graph, epsilon=0.05)
        # a phase may zero the cut entirely (decay 0); clamp for the
        # geometric mean, which requires positive values
        decays = [max(s.decay, 1e-6) for s in det.phases]
        worst["det"] = max(worst["det"], max(decays))
        table.add_row(
            family, "deterministic", len(decays), min(decays),
            geometric_mean(decays), max(decays), DET_BOUND,
        )
        rand = partition_randomized(graph, epsilon=0.05, delta=0.05, seed=1)
        decays_r = [max(s.decay, 1e-6) for s in rand.phases]
        worst["rand"] = max(worst["rand"], max(decays_r))
        table.add_row(
            family, "randomized", len(decays_r), min(decays_r),
            geometric_mean(decays_r), max(decays_r), RAND_BOUND,
        )
    save_table(table, "e07_weight_decay.md")
    return worst


def test_deterministic_decay_beats_bound(decay_table):
    assert decay_table["det"] <= DET_BOUND + 1e-9


def test_randomized_decay_beats_bound_whp(decay_table):
    # delta=0.05 over a handful of phases: allow no observed violation
    assert decay_table["rand"] <= RAND_BOUND + 1e-9


def test_benchmark_phase_loop(benchmark, decay_table):
    graph = make_planar("apollonian", N, seed=0)
    result = benchmark(lambda: partition_stage1(graph, epsilon=0.05))
    assert result.success
