"""E7 (Figure 3) -- per-phase cut-weight decay (Claims 1 and 14, Lemma 13).

Claims reproduced: the deterministic merging step multiplies the cut
weight by at most ``1 - 1/(12 alpha)`` per phase (we assert the
conservative provable ``1 - 1/(36 alpha)``), the randomized one by
``1 - 1/(64 alpha)`` w.h.p.  The measured decay factors beat both bounds
comfortably -- this is the series behind the paper's O(log 1/eps) phase
count.

Both algorithm variants run as one :class:`SweepSpec` per kind on the
:mod:`repro.runtime` engine (``REPRO_BENCH_BACKEND=process``
parallelizes across families); the partition job records carry the
per-run decay summary (min / geomean / max, zero-cut phases clamped to
1e-6) that this table used to recompute from in-process phase lists.
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.runtime import SweepSpec, run_sweep

ALPHA = 3
DET_BOUND = 1 - 1 / (36 * ALPHA)
RAND_BOUND = 1 - 1 / (64 * ALPHA)
FAMILIES = ("grid", "tri-grid", "apollonian", "delaunay")
N = 300 if quick_mode() else 600


@pytest.fixture(scope="module")
def decay_table():
    det_sweep = SweepSpec.make(
        "partition_stage1", families=FAMILIES, ns=(N,), seeds=(0,),
        epsilon=0.05,
    )
    # graph_seed pins the same generated instance the deterministic rows
    # use while seed=1 drives only the algorithm's randomness (the
    # pre-migration benchmark compared both algorithms on one graph).
    rand_sweep = SweepSpec.make(
        "partition_randomized", families=FAMILIES, ns=(N,), seeds=(1,),
        epsilon=0.05, delta=0.05, graph_seed=0,
    )
    det = run_sweep(det_sweep, backend=bench_backend(), cache=bench_cache())
    rand = run_sweep(rand_sweep, backend=bench_backend(), cache=bench_cache())

    table = Table(
        "E7: per-phase cut decay factors (lower = faster progress)",
        ["family", "algorithm", "phases", "min decay", "geomean decay",
         "max decay", "provable bound"],
    )
    worst = {"det": 0.0, "rand": 0.0}
    rand_by_family = {record["family"]: record for record in rand.records}
    for record in det.records:
        worst["det"] = max(worst["det"], record["decay_max"])
        table.add_row(
            record["family"], "deterministic", record["phases"],
            record["decay_min"], record["decay_geomean"],
            record["decay_max"], DET_BOUND,
        )
        rand_record = rand_by_family[record["family"]]
        worst["rand"] = max(worst["rand"], rand_record["decay_max"])
        table.add_row(
            record["family"], "randomized", rand_record["phases"],
            rand_record["decay_min"], rand_record["decay_geomean"],
            rand_record["decay_max"], RAND_BOUND,
        )
    save_table(table, "e07_weight_decay.md")
    return worst


def test_deterministic_decay_beats_bound(decay_table):
    assert decay_table["det"] <= DET_BOUND + 1e-9


def test_randomized_decay_beats_bound_whp(decay_table):
    # delta=0.05 over a handful of phases: allow no observed violation
    assert decay_table["rand"] <= RAND_BOUND + 1e-9


def test_benchmark_phase_loop(benchmark, decay_table):
    from repro.partition import partition_stage1

    graph = make_planar("apollonian", N, seed=0)
    result = benchmark(lambda: partition_stage1(graph, epsilon=0.05))
    assert result.success
