"""E4 (Figure 2) -- round complexity vs the distance parameter epsilon.

Claim reproduced: the poly(1/eps) factor of Theorem 1.  At fixed n the
measured rounds grow as epsilon shrinks (more phases, deeper parts,
larger samples), and the growth is polynomial in 1/eps.

The epsilon axis runs as one :mod:`repro.runtime` sweep
(``REPRO_BENCH_BACKEND=process`` parallelizes it; with a cache
configured, all points share one generated graph and its fingerprint).
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.runtime import SweepSpec, run_sweep
from repro.testers import test_planarity as run_planarity

EPSILONS = (0.5, 0.4, 0.3, 0.2, 0.1, 0.05)
N = 512
FAMILY = "delaunay"


@pytest.fixture(scope="module")
def eps_series():
    table = Table(
        f"E4: rounds vs 1/epsilon ({FAMILY}, n={N})",
        ["epsilon", "1/epsilon", "rounds", "stage1", "stage2",
         "phases", "parts", "max part height"],
    )
    sweep = SweepSpec.make(
        "test_planarity",
        families=[FAMILY],
        ns=[N],
        seeds=[0],
        epsilon=list(EPSILONS),
    )
    result = run_sweep(sweep, backend=bench_backend(), cache=bench_cache())
    series = []
    for record in result.records:
        assert record["accepted"]
        epsilon = record["epsilon"]
        series.append((epsilon, record["rounds"]))
        table.add_row(
            epsilon,
            1 / epsilon,
            record["rounds"],
            record["stage1_rounds"],
            record["stage2_rounds"],
            record["phases"],
            record["parts"],
            record["max_part_height"],
        )
    save_table(table, "e04_rounds_vs_eps.md")
    return series


def test_rounds_increase_as_eps_shrinks(eps_series):
    loosest = eps_series[0][1]
    tightest = eps_series[-1][1]
    assert tightest >= loosest


def test_growth_is_polynomial_not_exponential(eps_series):
    # rounds(eps/2) / rounds(eps) should stay bounded by a constant
    by_eps = dict(eps_series)
    for a, b in [(0.4, 0.2), (0.2, 0.1), (0.1, 0.05)]:
        assert by_eps[b] <= 40 * by_eps[a]


def test_benchmark_tight_epsilon(benchmark, eps_series):
    graph = make_planar(FAMILY, N, seed=0)
    result = benchmark(lambda: run_planarity(graph, epsilon=0.05, seed=0))
    assert result.accepted
