"""Shared infrastructure for the experiment benchmarks.

Every experiment module computes its table once (module-scoped fixture),
prints it, and persists a markdown copy under ``benchmarks/results/`` so
the numbers referenced by EXPERIMENTS.md can be regenerated with::

    pytest benchmarks/ --benchmark-only

The ``benchmark`` fixture times one representative kernel per experiment
(one tester/partition run), keeping wall-clock bounded while the table
itself covers the full parameter sweep.
"""

from __future__ import annotations

import os
import pathlib

from repro.analysis.tables import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(table: Table, filename: str) -> None:
    """Print *table* and persist its markdown rendering."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(table.to_markdown() + "\n")
    table.print()


def quick_mode() -> bool:
    """Smaller sweeps when REPRO_BENCH_QUICK=1 (CI-friendly)."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def bench_backend():
    """The runtime backend benchmark sweeps run on.

    ``REPRO_BENCH_BACKEND=process`` fans the sweep over a process pool
    (optionally sized by ``REPRO_BENCH_WORKERS``); the default stays
    serial so timings remain comparable across machines.  Records are
    identical either way -- the choice only affects wall-clock.
    """
    from repro.runtime import make_backend

    name = os.environ.get("REPRO_BENCH_BACKEND", "serial")
    if name == "process":
        workers = os.environ.get("REPRO_BENCH_WORKERS")
        return make_backend("process", max_workers=int(workers) if workers else None)
    return make_backend(name)


def bench_cache():
    """The result cache for benchmark sweeps, or ``None``.

    Every cell of one experiment's grid is a distinct spec, so a fresh
    in-memory cache could never hit within a run; caching only pays off
    across runs.  Set ``REPRO_BENCH_CACHE_DIR`` to a directory to enable
    the persistent store (repeat benchmark runs then skip the simulator
    entirely); the default disables caching so one-shot runs don't pay
    the graph-fingerprinting overhead.
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if not cache_dir:
        return None
    from repro.runtime import ResultCache

    return ResultCache(disk_dir=cache_dir)
