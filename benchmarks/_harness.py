"""Shared infrastructure for the experiment benchmarks.

Every experiment module computes its table once (module-scoped fixture),
prints it, and persists two artifacts under ``benchmarks/results/``:

* a markdown copy of the table (``eXX_*.md``), the human-readable
  rendering EXPERIMENTS.md references;
* a machine-readable ``BENCH_eXX.json`` record -- the table's raw rows
  plus environment metadata (backend, python version, quick flag) and
  any experiment-supplied metrics (wall times, speedup ratios).  CI
  uploads these from every bench leg and
  ``benchmarks/baselines/`` holds committed quick-grid baselines, so
  the perf trajectory of the repo is diffable across PRs::

    pytest benchmarks/ --benchmark-only

The ``benchmark`` fixture times one representative kernel per experiment
(one tester/partition run), keeping wall-clock bounded while the table
itself covers the full parameter sweep.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from repro.analysis.tables import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# BENCH json files this process already wrote: the first table of a run
# starts the record fresh (dropping stale tables from earlier runs);
# later tables of the same experiment merge in.
_WRITTEN_THIS_RUN = set()


def _bench_json_path(filename: str) -> pathlib.Path:
    experiment = filename.split("_", 1)[0]
    return RESULTS_DIR / f"BENCH_{experiment}.json"


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "backend": os.environ.get("REPRO_BENCH_BACKEND", "serial"),
        "quick": quick_mode(),
        "cache_dir": bool(os.environ.get("REPRO_BENCH_CACHE_DIR")),
    }


def _telemetry_block() -> dict:
    """This process's tracer counters, embedded in every BENCH record.

    Benchmarks are expected to run with telemetry *disabled* (enabled
    false, zero spans); a non-zero span count in a BENCH record flags a
    leaked ``REPRO_TELEMETRY``/``REPRO_TRACE_DIR`` in the bench
    environment, which would taint the timings.
    """
    from repro.telemetry import get_tracer

    tracer = get_tracer()
    return {
        "enabled": tracer.enabled,
        "spans": tracer.span_count,
        "events": tracer.event_count,
        "traced_s": round(max(tracer.traced_seconds, 0.0), 6),
    }


def _sanitize_metrics(metrics) -> dict:
    """Clamp negative ``*_s`` duration metrics to zero.

    Durations come from paired ``perf_counter`` reads; a suspended VM
    or a buggy experiment can only ever produce a nonsense *negative*
    value, and a negative wall-time would silently invert speedup
    ratios in the perf-trajectory diff.
    """
    clean = {}
    for key, value in dict(metrics or {}).items():
        if (
            key.endswith("_s")
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value < 0
        ):
            value = 0.0
        clean[key] = value
    return clean


def record_bench(filename: str, table: Table, metrics=None) -> pathlib.Path:
    """Write/merge the ``BENCH_eXX.json`` record for one saved table.

    The record keys tables by their markdown stem, so experiments that
    save several tables accumulate them all under one experiment file.
    """
    path = _bench_json_path(filename)
    payload = None
    if path in _WRITTEN_THIS_RUN and path.is_file():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = None
    if not isinstance(payload, dict):
        payload = {"schema": 1, "experiment": filename.split("_", 1)[0]}
    payload.update(_environment())
    payload["generated_unix"] = round(time.time(), 3)
    payload["telemetry"] = _telemetry_block()
    tables = payload.setdefault("tables", {})
    stem = filename.rsplit(".", 1)[0]
    tables[stem] = {
        "source": filename,
        "title": table.title,
        "columns": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "metrics": _sanitize_metrics(metrics),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _WRITTEN_THIS_RUN.add(path)
    return path


def save_table(table: Table, filename: str, metrics=None) -> None:
    """Print *table*; persist markdown + the machine-readable record.

    Args:
        table: the experiment's result table.
        filename: markdown filename under ``benchmarks/results/``
            (``eXX_<slug>.md`` -- the ``eXX`` prefix names the
            ``BENCH_eXX.json`` record).
        metrics: optional flat dict of experiment metrics (timings,
            speedup ratios, gate thresholds) for the JSON record.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(table.to_markdown() + "\n")
    record_bench(filename, table, metrics)
    table.print()


def quick_mode() -> bool:
    """Smaller sweeps when REPRO_BENCH_QUICK=1 (CI-friendly)."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"


def bench_backend():
    """The runtime backend benchmark sweeps run on.

    ``REPRO_BENCH_BACKEND=process`` fans the sweep over a process pool
    (optionally sized by ``REPRO_BENCH_WORKERS``); the default stays
    serial so timings remain comparable across machines.  Records are
    identical either way -- the choice only affects wall-clock.
    """
    from repro.runtime import make_backend

    name = os.environ.get("REPRO_BENCH_BACKEND", "serial")
    if name == "process":
        workers = os.environ.get("REPRO_BENCH_WORKERS")
        return make_backend("process", max_workers=int(workers) if workers else None)
    return make_backend(name)


def bench_cache():
    """The result cache for benchmark sweeps, or ``None``.

    Every cell of one experiment's grid is a distinct spec, so a fresh
    in-memory cache could never hit within a run; caching only pays off
    across runs.  Set ``REPRO_BENCH_CACHE_DIR`` to a directory to enable
    the persistent store (repeat benchmark runs then skip the simulator
    entirely); the default disables caching so one-shot runs don't pay
    the graph-fingerprinting overhead.
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if not cache_dir:
        return None
    from repro.runtime import ResultCache

    return ResultCache(disk_dir=cache_dir)
