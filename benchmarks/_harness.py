"""Shared infrastructure for the experiment benchmarks.

Every experiment module computes its table once (module-scoped fixture),
prints it, and persists a markdown copy under ``benchmarks/results/`` so
the numbers referenced by EXPERIMENTS.md can be regenerated with::

    pytest benchmarks/ --benchmark-only

The ``benchmark`` fixture times one representative kernel per experiment
(one tester/partition run), keeping wall-clock bounded while the table
itself covers the full parameter sweep.
"""

from __future__ import annotations

import os
import pathlib

from repro.analysis.tables import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(table: Table, filename: str) -> None:
    """Print *table* and persist its markdown rendering."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(table.to_markdown() + "\n")
    table.print()


def quick_mode() -> bool:
    """Smaller sweeps when REPRO_BENCH_QUICK=1 (CI-friendly)."""
    return os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
