"""E9 (Table 6) -- Corollary 16: cycle-freeness and bipartiteness testers.

Claims reproduced: under the minor-free promise, the deterministic
testers accept every property-satisfying graph, reject every certified
epsilon-far graph, and run in O(poly(1/eps) log n) rounds; the randomized
variants succeed with probability >= 1 - delta in
O(poly(1/eps)(log 1/delta + log* n)) rounds.

The workload x method grid executes as ``application_audit`` jobs on
the :mod:`repro.runtime` engine; the runner measures each graph's
certified farness and derives the tester epsilon from it, so the spec
stays declarative (``REPRO_BENCH_BACKEND=process`` parallelizes the
grid).
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import triangulated_grid
from repro.runtime import JobSpec, run_jobs
from repro.testers import test_cycle_freeness as run_cycle_freeness

SIDE = 12 if quick_mode() else 18
METHODS = ("deterministic", "randomized")

# (name, family, property, expected verdict); the graphs are the family
# generators at n = SIDE*SIDE with graph seed 0 (grids ignore the seed).
WORKLOADS = (
    ("tree", "tree", "cycle", True),
    ("grid", "grid", "cycle", False),
    ("tri-grid", "tri-grid", "cycle", False),
    ("sparse planar", "planar-sparse", "cycle", None),
    ("grid", "grid", "bipartite", True),
    ("tree", "tree", "bipartite", True),
    ("tri-grid", "tri-grid", "bipartite", False),
)


@pytest.fixture(scope="module")
def applications_table():
    specs = [
        JobSpec.make(
            "application_audit",
            family=family,
            n=SIDE * SIDE,
            seed=3,
            graph_seed=0,
            property=prop,
            method=method,
        )
        for _name, family, prop, _expected in WORKLOADS
        for method in METHODS
    ]
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())
    records = list(batch)

    table = Table(
        "E9: Corollary 16 testers on minor-free graphs",
        ["graph", "property", "farness (lb)", "method", "verdict",
         "expected", "rounds"],
    )
    failures = 0
    index = 0
    for name, _family, prop, expected in WORKLOADS:
        for method in METHODS:
            record = records[index]
            index += 1
            verdict = record["accepted"]
            ok = expected is None or verdict == expected
            failures += not ok
            table.add_row(
                name,
                prop,
                record["farness"],
                method,
                "accept" if verdict else "REJECT",
                "-" if expected is None else ("accept" if expected else "REJECT"),
                record["rounds"],
            )
    save_table(table, "e09_applications.md")
    return failures


def test_all_expected_verdicts(applications_table):
    assert applications_table == 0


def test_benchmark_cycle_tester(benchmark, applications_table):
    graph = triangulated_grid(SIDE, SIDE)
    result = benchmark(lambda: run_cycle_freeness(graph, epsilon=0.4))
    assert not result.accepted
