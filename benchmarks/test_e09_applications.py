"""E9 (Table 6) -- Corollary 16: cycle-freeness and bipartiteness testers.

Claims reproduced: under the minor-free promise, the deterministic
testers accept every property-satisfying graph, reject every certified
epsilon-far graph, and run in O(poly(1/eps) log n) rounds; the randomized
variants succeed with probability >= 1 - delta in
O(poly(1/eps)(log 1/delta + log* n)) rounds.
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import (
    bipartiteness_farness_bounds,
    cycle_freeness_farness,
    grid_graph,
    make_planar,
    random_tree,
    triangulated_grid,
)
from repro.testers import test_bipartiteness as run_bipartiteness
from repro.testers import test_cycle_freeness as run_cycle_freeness

SIDE = 12 if quick_mode() else 18


@pytest.fixture(scope="module")
def applications_table():
    tri = triangulated_grid(SIDE, SIDE)
    grid = grid_graph(SIDE, SIDE)
    tree = random_tree(SIDE * SIDE, seed=0)
    sparse = make_planar("planar-sparse", SIDE * SIDE, seed=0)

    workloads = [
        # (name, graph, property, expected verdict, measured farness)
        ("tree", tree, "cycle", True, cycle_freeness_farness(tree)),
        ("grid", grid, "cycle", False, cycle_freeness_farness(grid)),
        ("tri-grid", tri, "cycle", False, cycle_freeness_farness(tri)),
        ("sparse planar", sparse, "cycle", None, cycle_freeness_farness(sparse)),
        ("grid", grid, "bipartite", True, bipartiteness_farness_bounds(grid)[0]),
        ("tree", tree, "bipartite", True, bipartiteness_farness_bounds(tree)[0]),
        ("tri-grid", tri, "bipartite", False, bipartiteness_farness_bounds(tri)[0]),
    ]
    table = Table(
        "E9: Corollary 16 testers on minor-free graphs",
        ["graph", "property", "farness (lb)", "method", "verdict",
         "expected", "rounds"],
    )
    failures = 0
    for name, graph, prop, expected, farness in workloads:
        for method in ("deterministic", "randomized"):
            runner = run_cycle_freeness if prop == "cycle" else run_bipartiteness
            epsilon = max(0.05, min(0.4, farness * 0.8)) if farness > 0 else 0.3
            result = runner(graph, epsilon=epsilon, method=method, seed=3)
            verdict = result.accepted
            ok = expected is None or verdict == expected
            failures += not ok
            table.add_row(
                name,
                prop,
                farness,
                method,
                "accept" if verdict else "REJECT",
                "-" if expected is None else ("accept" if expected else "REJECT"),
                result.rounds,
            )
    save_table(table, "e09_applications.md")
    return failures


def test_all_expected_verdicts(applications_table):
    assert applications_table == 0


def test_benchmark_cycle_tester(benchmark, applications_table):
    graph = triangulated_grid(SIDE, SIDE)
    result = benchmark(lambda: run_cycle_freeness(graph, epsilon=0.4))
    assert not result.accepted
