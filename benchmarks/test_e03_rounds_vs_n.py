"""E3 (Figure 1) -- round complexity scales as O(log n) at fixed epsilon.

Claim reproduced: Theorem 1's ``O(log n * poly(1/eps))`` round bound and
its optimality (Theorem 2): measured rounds grow linearly in ``log2 n``.
The table is the figure's data series; the fit quantifies the shape
(rounds ~ a*log2(n) + b with high R^2, and rounds/log2(n) flat).

The size series runs as one :mod:`repro.runtime` sweep, so the points
can be computed in parallel (``REPRO_BENCH_BACKEND=process``), and
repeat runs hit the result cache when ``REPRO_BENCH_CACHE_DIR`` is set.
"""

from __future__ import annotations

import math

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis import fit_rounds_vs_log_n
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.runtime import SweepSpec, run_sweep
from repro.testers import test_planarity as run_planarity

SIZES = (128, 256, 512, 1024) if quick_mode() else (128, 256, 512, 1024, 2048, 4096)
EPSILON = 0.25
FAMILY = "grid"


@pytest.fixture(scope="module")
def scaling_series():
    table = Table(
        f"E3: rounds vs n ({FAMILY}, epsilon={EPSILON}) -- expect linear in log n",
        ["n", "rounds", "stage1", "stage2", "rounds/log2(n)", "phases"],
    )
    sweep = SweepSpec.make(
        "test_planarity", families=[FAMILY], ns=SIZES, seeds=[0], epsilon=EPSILON
    )
    result = run_sweep(sweep, backend=bench_backend(), cache=bench_cache())
    ns, rounds = [], []
    for record in result.records:
        assert record["accepted"]
        actual_n = record["n"]
        ns.append(actual_n)
        rounds.append(record["rounds"])
        table.add_row(
            actual_n,
            record["rounds"],
            record["stage1_rounds"],
            record["stage2_rounds"],
            record["rounds"] / math.log2(actual_n),
            record["phases"],
        )
    fit = fit_rounds_vs_log_n(ns, rounds)
    table.add_row("fit", f"{fit.slope:.0f}*log2(n)+{fit.intercept:.0f}",
                  "-", "-", f"R^2={fit.r_squared:.3f}", "-")
    save_table(table, "e03_rounds_vs_n.md")
    return ns, rounds, fit


def test_log_n_scaling(scaling_series):
    ns, rounds, fit = scaling_series
    # the log-fit should explain the series well
    assert fit.r_squared > 0.8
    # and the growth must be strongly sublinear in n (instance noise on
    # short sweeps motivates the 0.75 exponent; the full sweep sits far
    # below even a square-root profile)
    assert rounds[-1] / rounds[0] < (ns[-1] / ns[0]) ** 0.75


def test_benchmark_tester_at_1024(benchmark, scaling_series):
    graph = make_planar(FAMILY, 1024, seed=0)
    result = benchmark(lambda: run_planarity(graph, epsilon=EPSILON, seed=0))
    assert result.accepted
