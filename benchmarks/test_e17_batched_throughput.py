"""E17 -- batched tensor plane: B trials as one numpy program.

Claim reproduced (engineering, not paper): stacking B same-topology
CONGEST trials into ``(B, slots)`` tensors and stepping them in
lockstep amortizes the python interpreter out of the delivery loop.
On a dense graph the batched plane must run each trial >= 5x faster
than the scalar dense plane under the ``fast`` profile while staying
bit-identical per trial (outputs, rounds, ledger totals).

The runtime half replays the same cell through :func:`run_jobs` with
``batch=B`` and asserts the coalescing path: one ``simulate_batch``
dispatch, B scalar records out, one topology compilation.
"""

from __future__ import annotations

import time

import networkx as nx

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.congest import (
    CongestNetwork,
    compile_topology,
    reset_topology_stats,
    run_batched,
    topology_stats,
)
from repro.congest.programs import BroadcastStormProgram
from repro.runtime import JobSpec, ResultCache, SerialBackend, run_jobs
import pytest

N = 200 if quick_mode() else 500
EDGE_PROB = 0.08
BATCH = 16 if quick_mode() else 64
STORM_ROUNDS = 6 if quick_mode() else 12
REPEATS = 2 if quick_mode() else 3
GATE = 5.0


def _storm_scalar(network: CongestNetwork):
    return network.run(
        BroadcastStormProgram,
        max_rounds=STORM_ROUNDS + 2,
        config={"storm_rounds": STORM_ROUNDS},
        profile="fast",
    )


RESULT_FIELDS = (
    "rounds",
    "halted",
    "total_messages",
    "total_bits",
    "max_message_bits",
    "over_budget_messages",
    "profile",
)


@pytest.fixture(scope="module")
def batched_table():
    graph = nx.gnp_random_graph(N, EDGE_PROB, seed=0)
    topology = compile_topology(graph)
    network = CongestNetwork(graph, seed=0)
    params = {"storm_rounds": STORM_ROUNDS}

    # Scalar side: per-trial cost of the dense plane, best-of-REPEATS.
    scalar_s = float("inf")
    scalar = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        scalar = _storm_scalar(network)
        scalar_s = min(scalar_s, time.perf_counter() - start)

    # Batched side: B trials of the same cell in one tensor program.
    batched_s = float("inf")
    results = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        results = run_batched("storm", [topology] * BATCH, params=params)
        batched_s = min(batched_s, time.perf_counter() - start)
    per_trial_s = batched_s / BATCH
    speedup = scalar_s / per_trial_s

    # Bit identity is part of the claim, not a separate suite here.
    for batched in results:
        for field in RESULT_FIELDS:
            assert getattr(batched, field) == getattr(scalar, field), field
        assert batched.outputs == scalar.outputs

    table = Table(
        f"E17: batched plane on G(n={N}, p={EDGE_PROB}), B={BATCH}, "
        f"{STORM_ROUNDS} storm rounds (fast profile)",
        ["plane", "trials", "wall s", "s/trial", "msgs/s", "speedup"],
    )
    table.add_row(
        "scalar dense",
        1,
        round(scalar_s, 4),
        round(scalar_s, 4),
        int(scalar.total_messages / scalar_s),
        1.0,
    )
    table.add_row(
        "batched tensor",
        BATCH,
        round(batched_s, 4),
        round(per_trial_s, 4),
        int(scalar.total_messages / per_trial_s),
        round(speedup, 2),
    )

    # Runtime half: the executor coalesces the cell into one
    # simulate_batch job and re-expands B scalar records.
    reset_topology_stats()
    specs = [
        JobSpec.make(
            "simulate_program",
            family="delaunay",
            n=128,
            seed=trial,
            graph_seed=0,
            program="storm",
            profile="fast",
            storm_rounds=STORM_ROUNDS,
        )
        for trial in range(8)
    ]
    batch = run_jobs(
        specs, backend=SerialBackend(), cache=ResultCache(), batch=8
    )
    compiled = topology_stats().compiled
    table.add_row(
        "sweep (8 trials, --batch 8)",
        len(batch.records),
        "-",
        "-",
        "-",
        f"{compiled} topology compile",
    )

    save_table(
        table,
        "e17_batched_throughput.md",
        metrics={
            "n": N,
            "edge_prob": EDGE_PROB,
            "batch": BATCH,
            "storm_rounds": STORM_ROUNDS,
            "repeats": REPEATS,
            "scalar_s": round(scalar_s, 6),
            "batched_s": round(batched_s, 6),
            "per_trial_s": round(per_trial_s, 6),
            "speedup": round(speedup, 3),
            "gate": GATE,
        },
    )
    return speedup, scalar, results, compiled, batch


def test_batched_at_least_5x_per_trial(batched_table):
    speedup, _scalar, _results, _compiled, _batch = batched_table
    assert speedup >= GATE, f"batched per-trial speedup only {speedup:.2f}x"


def test_batched_trials_bit_identical(batched_table):
    _speedup, scalar, results, _compiled, _batch = batched_table
    assert len(results) == BATCH
    for batched in results:
        assert batched.outputs == scalar.outputs
        assert batched.total_bits == scalar.total_bits


def test_sweep_coalesces_and_expands(batched_table):
    _speedup, _scalar, _results, compiled, batch = batched_table
    assert compiled == 1
    assert batch.executed == 8
    assert len(batch.records) == 8
    assert all(r["kind"] == "simulate_program" for r in batch.records)


def test_benchmark_batched_storm(benchmark, batched_table):
    graph = nx.gnp_random_graph(N, EDGE_PROB, seed=0)
    topology = compile_topology(graph)
    results = benchmark(
        lambda: run_batched(
            "storm",
            [topology] * BATCH,
            params={"storm_rounds": STORM_ROUNDS},
        )
    )
    assert all(r.halted for r in results)
