"""E14 (Table 10) -- substrate validation and cross-layer consistency.

Audits the layers everything else rests on:

* the LR planarity test agrees with the networkx oracle across a random
  graph sweep, and its embeddings pass the independent Euler-formula
  verification;
* the simulated (message-passing) and emulated (ledger-charged) layers
  agree exactly: Barenboim-Elkin deactivation schedules and Cole-Vishkin
  colorings match; BFS trees match;
* protocol bandwidth stays within the O(log n)-bit CONGEST budget.
"""

from __future__ import annotations

import random

import networkx as nx
import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.congest import CongestNetwork
from repro.congest.programs import (
    BFSTreeProgram,
    cole_vishkin_coloring,
    run_forest_decomposition_simulated,
)
from repro.graphs import make_planar
from repro.partition import (
    AuxiliaryGraph,
    Partition,
    cole_vishkin_emulated,
    forest_decomposition_emulated,
)
from repro.planarity import check_planarity, verify_planar_embedding

SWEEP = 120 if quick_mode() else 300


@pytest.fixture(scope="module")
def substrate_table():
    table = Table(
        "E14: substrate validation",
        ["check", "instances", "agreements", "notes"],
    )

    # LR vs oracle
    rng = random.Random(0)
    agree = 0
    embeddings = 0
    for trial in range(SWEEP):
        n = rng.randint(2, 16)
        p = rng.random()
        graph = nx.gnp_random_graph(n, p, seed=trial)
        mine = check_planarity(graph)
        oracle, _ = nx.check_planarity(graph)
        agree += mine.is_planar == oracle
        if mine.is_planar:
            verify_planar_embedding(mine.embedding, graph)
            embeddings += 1
    table.add_row("LR verdict vs networkx oracle", SWEEP, agree,
                  f"{embeddings} embeddings Euler-verified")

    # simulated vs emulated forest decomposition
    fd_agree = 0
    families = ("grid", "delaunay", "apollonian", "tri-grid")
    for family in families:
        graph = make_planar(family, 150, seed=1)
        sim = run_forest_decomposition_simulated(graph, alpha=3, seed=0)
        emu = forest_decomposition_emulated(
            AuxiliaryGraph(Partition.singletons(graph)), alpha=3
        )
        same = sim.inactive_round == emu.inactive_round and {
            v: set(o) for v, o in sim.out_neighbors.items()
        } == {v: set(o) for v, o in emu.out_edges.items()}
        fd_agree += same
    table.add_row("BE simulated == emulated", len(families), fd_agree,
                  "deactivation schedule + orientation")

    # simulated vs emulated Cole-Vishkin
    graph = nx.path_graph(120)
    parents = {i: i - 1 if i > 0 else None for i in graph.nodes()}
    sim_colors, sim_rounds = cole_vishkin_coloring(graph, parents, seed=0)
    emu_colors, emu_super = cole_vishkin_emulated(parents)
    cv_same = sim_colors == emu_colors
    table.add_row("CV simulated == emulated", 1, int(cv_same),
                  f"{sim_rounds} protocol rounds, {emu_super} super-rounds")

    # bandwidth audit of the BFS protocol
    graph = make_planar("delaunay", 200, seed=2)
    network = CongestNetwork(graph, seed=0)
    result = network.run(
        BFSTreeProgram,
        max_rounds=graph.number_of_nodes(),
        config={"root": 0},
        strict_bandwidth=True,
    )
    table.add_row(
        "BFS protocol within bandwidth",
        result.total_messages,
        result.total_messages - result.over_budget_messages,
        f"max msg {result.max_message_bits} bits vs budget "
        f"{result.bandwidth_bits}",
    )

    # distributed Stage II protocol vs the emulated Euler-tour walk
    from repro.congest.programs import run_stage2_verification_simulated
    from repro.testers.labels import (
        deterministic_bfs_tree,
        euler_tour_positions,
    )

    s2_agree = 0
    s2_families = ("grid", "delaunay", "apollonian")
    for family in s2_families:
        part = make_planar(family, 90, seed=3)
        embedding = check_planarity(part).embedding
        distributed = run_stage2_verification_simulated(
            part, 0, embedding.to_dict(), epsilon=0.2, seed=0
        )
        parents, _depths = deterministic_bfs_tree(part, 0)
        emulated, _total = euler_tour_positions(part, 0, embedding, parents)
        s2_agree += distributed.accepted and distributed.positions == emulated
    table.add_row(
        "distributed Stage II == emulated corners",
        len(s2_families),
        s2_agree,
        "positions identical + planar parts accepted",
    )

    save_table(table, "e14_substrates.md")
    return agree, fd_agree, cv_same, result.over_budget_messages, s2_agree


def test_lr_oracle_agreement(substrate_table):
    agree, _fd, _cv, _ob, _s2 = substrate_table
    assert agree == SWEEP


def test_cross_layer_agreement(substrate_table):
    _a, fd_agree, cv_same, _ob, s2_agree = substrate_table
    assert fd_agree == 4
    assert cv_same
    assert s2_agree == 3


def test_bandwidth_never_exceeded(substrate_table):
    _a, _fd, _cv, over_budget, _s2 = substrate_table
    assert over_budget == 0


def test_benchmark_lr_planarity(benchmark, substrate_table):
    graph = make_planar("delaunay", 1000, seed=0)
    result = benchmark(lambda: check_planarity(graph))
    assert result.is_planar
