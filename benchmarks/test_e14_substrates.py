"""E14 (Table 10) -- substrate validation and cross-layer consistency.

Audits the layers everything else rests on:

* the LR planarity test agrees with the networkx oracle across a random
  graph sweep, and its embeddings pass the independent Euler-formula
  verification;
* the simulated (message-passing) and emulated (ledger-charged) layers
  agree exactly: Barenboim-Elkin deactivation schedules and Cole-Vishkin
  colorings match; BFS trees match;
* protocol bandwidth stays within the O(log n)-bit CONGEST budget.

Every check runs as a job batch on the :mod:`repro.runtime` engine --
``lr_oracle_trial`` (one job per random graph; the ``(n, p)``
coordinates come from the table's shared RNG walk, computed up front so
the committed numbers reproduce), ``forest_agreement``,
``cv_agreement``, ``congest_bandwidth``, and ``stage2_agreement``.
``REPRO_BENCH_BACKEND=process`` fans the whole audit over a pool.
"""

from __future__ import annotations

import random

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.runtime import JobSpec, run_jobs

SWEEP = 120 if quick_mode() else 300
FD_FAMILIES = ("grid", "delaunay", "apollonian", "tri-grid")
S2_FAMILIES = ("grid", "delaunay", "apollonian")


def _lr_trial_specs():
    """The (n, p) walk of the LR-vs-oracle sweep, as declarative specs.

    The sizes and densities are drawn from one sequential RNG stream
    (exactly the pre-migration protocol), then frozen into per-trial
    specs so the jobs are independent and poolable.
    """
    rng = random.Random(0)
    specs = []
    for trial in range(SWEEP):
        n = rng.randint(2, 16)
        p = rng.random()
        specs.append(
            JobSpec.make(
                "lr_oracle_trial", n=n, seed=0, gnp_n=n, gnp_p=p, trial=trial
            )
        )
    return specs


@pytest.fixture(scope="module")
def substrate_table():
    lr_specs = _lr_trial_specs()
    fd_specs = [
        JobSpec.make(
            "forest_agreement", family=family, n=150, seed=0, graph_seed=1,
            alpha=3,
        )
        for family in FD_FAMILIES
    ]
    cv_spec = JobSpec.make("cv_agreement", n=120, seed=0, length=120)
    bw_spec = JobSpec.make(
        "congest_bandwidth", family="delaunay", n=200, seed=0, graph_seed=2,
        root=0,
    )
    s2_specs = [
        JobSpec.make(
            "stage2_agreement", family=family, n=90, seed=0, graph_seed=3,
            epsilon=0.2,
        )
        for family in S2_FAMILIES
    ]
    specs = lr_specs + fd_specs + [cv_spec, bw_spec] + s2_specs
    batch = run_jobs(specs, backend=bench_backend(), cache=bench_cache())
    records = list(batch)

    lr = records[: len(lr_specs)]
    cursor = len(lr_specs)
    fd = records[cursor: cursor + len(fd_specs)]
    cursor += len(fd_specs)
    cv = records[cursor]
    bandwidth = records[cursor + 1]
    s2 = records[cursor + 2:]

    table = Table(
        "E14: substrate validation",
        ["check", "instances", "agreements", "notes"],
    )
    agree = sum(record["agree"] for record in lr)
    embeddings = sum(record["embedding_verified"] for record in lr)
    table.add_row("LR verdict vs networkx oracle", SWEEP, agree,
                  f"{embeddings} embeddings Euler-verified")

    fd_agree = sum(record["agree"] for record in fd)
    table.add_row("BE simulated == emulated", len(FD_FAMILIES), fd_agree,
                  "deactivation schedule + orientation")

    cv_same = bool(cv["agree"])
    table.add_row("CV simulated == emulated", 1, int(cv_same),
                  f"{cv['sim_rounds']} protocol rounds, "
                  f"{cv['emu_super_rounds']} super-rounds")

    table.add_row(
        "BFS protocol within bandwidth",
        bandwidth["messages"],
        bandwidth["messages"] - bandwidth["over_budget"],
        f"max msg {bandwidth['max_message_bits']} bits vs budget "
        f"{bandwidth['bandwidth_bits']}",
    )

    s2_agree = sum(record["agree"] for record in s2)
    table.add_row(
        "distributed Stage II == emulated corners",
        len(S2_FAMILIES),
        s2_agree,
        "positions identical + planar parts accepted",
    )

    save_table(table, "e14_substrates.md")
    return agree, fd_agree, cv_same, bandwidth["over_budget"], s2_agree


def test_lr_oracle_agreement(substrate_table):
    agree, _fd, _cv, _ob, _s2 = substrate_table
    assert agree == SWEEP


def test_cross_layer_agreement(substrate_table):
    _a, fd_agree, cv_same, _ob, s2_agree = substrate_table
    assert fd_agree == 4
    assert cv_same
    assert s2_agree == 3


def test_bandwidth_never_exceeded(substrate_table):
    _a, _fd, _cv, over_budget, _s2 = substrate_table
    assert over_budget == 0


def test_benchmark_lr_planarity(benchmark, substrate_table):
    from repro.planarity import check_planarity

    graph = make_planar("delaunay", 1000, seed=0)
    result = benchmark(lambda: check_planarity(graph))
    assert result.is_planar
