"""E16 -- dense-index pipeline: CSR-native partition + Stage II throughput.

Claim reproduced (engineering, not paper): porting the emulated
partition/stage2 layer onto the compiled topology's CSR arrays removes
the networkx-view and dict-churn constant factors without changing a
single output.  Gated (and run in CI's bench-smoke job):

* the dense partition engine is >= 3x the legacy dict engine on the
  n=2000 Delaunay partition;
* the end-to-end planarity tester (dense Stage I + native Stage II) is
  >= 1.5x the seed path;
* both engines produce identical partitions, phase stats, ledgers, and
  per-part verdicts (the full differential suite lives in
  ``tests/test_partition_dense.py`` / ``tests/test_stage2_native.py``).

The gate sizes are fixed at n=2000 regardless of ``REPRO_BENCH_QUICK``
-- the speedup claim is specifically about that scale; quick mode only
trims the repeat count.
"""

from __future__ import annotations

import time

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.congest.topology import compile_topology
from repro.graphs import make_planar
from repro.partition import partition_stage1
from repro.testers.planarity import PlanarityTestConfig
from repro.testers.planarity import test_planarity as run_planarity

N = 2000
EPSILON = 0.1
REPEATS = 2 if quick_mode() else 4

PARTITION_GATE = 3.0
TESTER_GATE = 1.5


def _best(fn):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def pipeline_table():
    graph = make_planar("delaunay", N, seed=0)
    compile_topology(graph).edge_arrays()  # timings cover the sweeps only

    legacy_time, legacy = _best(
        lambda: partition_stage1(graph, epsilon=EPSILON, engine="legacy")
    )
    dense_time, dense = _best(
        lambda: partition_stage1(graph, epsilon=EPSILON, engine="dense")
    )
    seed_config = PlanarityTestConfig(
        epsilon=EPSILON, engine="legacy", native=False
    )
    native_config = PlanarityTestConfig(epsilon=EPSILON)
    seed_tester_time, seed_result = _best(
        lambda: run_planarity(graph, seed=0, config=seed_config)
    )
    native_tester_time, native_result = _best(
        lambda: run_planarity(graph, seed=0, config=native_config)
    )

    assert dense.partition.size == legacy.partition.size
    assert dense.partition.cut_size() == legacy.partition.cut_size()
    assert dense.rounds == legacy.rounds
    assert [vars(s) for s in dense.phases] == [vars(s) for s in legacy.phases]
    assert native_result.accepted == seed_result.accepted
    assert native_result.rounds == seed_result.rounds

    partition_speedup = legacy_time / dense_time
    tester_speedup = seed_tester_time / native_tester_time

    table = Table(
        f"E16: dense-index pipeline on delaunay n={N}, eps={EPSILON}",
        ["workload", "engine", "wall s", "speedup", "gate", "identical"],
    )
    table.add_row("partition", "legacy (seed)", round(legacy_time, 4), 1.0, "-", "-")
    table.add_row(
        "partition",
        "dense (CSR)",
        round(dense_time, 4),
        round(partition_speedup, 2),
        f">={PARTITION_GATE}x",
        "yes",
    )
    table.add_row(
        "tester e2e", "legacy (seed)", round(seed_tester_time, 4), 1.0, "-", "-"
    )
    table.add_row(
        "tester e2e",
        "dense+native",
        round(native_tester_time, 4),
        round(tester_speedup, 2),
        f">={TESTER_GATE}x",
        "yes",
    )
    save_table(
        table,
        "e16_dense_pipeline.md",
        metrics={
            "n": N,
            "epsilon": EPSILON,
            "repeats": REPEATS,
            "partition_legacy_s": round(legacy_time, 6),
            "partition_dense_s": round(dense_time, 6),
            "partition_speedup": round(partition_speedup, 3),
            "partition_gate": PARTITION_GATE,
            "tester_seed_s": round(seed_tester_time, 6),
            "tester_native_s": round(native_tester_time, 6),
            "tester_speedup": round(tester_speedup, 3),
            "tester_gate": TESTER_GATE,
        },
    )
    return partition_speedup, tester_speedup


def test_partition_speedup_gate(pipeline_table):
    partition_speedup, _tester = pipeline_table
    assert partition_speedup >= PARTITION_GATE, (
        f"dense partition speedup only {partition_speedup:.2f}x"
    )


def test_tester_speedup_gate(pipeline_table):
    _partition, tester_speedup = pipeline_table
    assert tester_speedup >= TESTER_GATE, (
        f"end-to-end tester speedup only {tester_speedup:.2f}x"
    )


def test_benchmark_dense_partition(benchmark, pipeline_table):
    graph = make_planar("delaunay", N, seed=0)
    result = benchmark(
        lambda: partition_stage1(graph, epsilon=EPSILON, engine="dense")
    )
    assert result.success
