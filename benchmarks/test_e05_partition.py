"""E5 (Table 3) -- Theorem 3: deterministic partition quality.

Claim reproduced: "the algorithm runs in O(poly(1/eps) log n) rounds, the
diameter of each part is poly(1/eps), and if G is minor-free, then the
total number of edges between parts is at most eps*n".
"""

from __future__ import annotations

import pytest

from _harness import quick_mode, save_table
from repro.analysis.tables import Table
from repro.graphs import make_planar
from repro.partition import partition_stage1

FAMILIES = ("grid", "tri-grid", "apollonian", "delaunay", "outerplanar")
EPSILONS = (0.4, 0.2, 0.1)
N = 300 if quick_mode() else 600


@pytest.fixture(scope="module")
def partition_table():
    table = Table(
        f"E5: Theorem 3 partition quality (n={N}, target = eps*n)",
        ["family", "epsilon", "parts", "cut", "target eps*n",
         "max diameter", "max height", "phases", "rounds"],
    )
    rows = []
    for family in FAMILIES:
        graph = make_planar(family, N, seed=0)
        n = graph.number_of_nodes()
        for epsilon in EPSILONS:
            result = partition_stage1(
                graph, epsilon=epsilon, target_cut=epsilon * n
            )
            assert result.success, family
            cut = result.partition.cut_size()
            diam = result.partition.max_diameter()
            rows.append((family, epsilon, cut, epsilon * n, diam))
            table.add_row(
                family,
                epsilon,
                result.partition.size,
                cut,
                epsilon * n,
                diam,
                result.partition.max_height(),
                len(result.phases),
                result.rounds,
            )
    save_table(table, "e05_partition.md")
    return rows


def test_cut_targets_met(partition_table):
    for family, epsilon, cut, target, _diam in partition_table:
        assert cut <= target, (family, epsilon, cut, target)


def test_diameters_do_not_depend_on_n(partition_table):
    # poly(1/eps) diameters: for fixed eps the diameter is bounded by a
    # modest constant, far below n
    for family, epsilon, _cut, _target, diam in partition_table:
        assert diam <= 4 ** (2 + int(3 / epsilon)), (family, epsilon, diam)


def test_benchmark_partition(benchmark, partition_table):
    graph = make_planar("delaunay", N, seed=0)
    result = benchmark(
        lambda: partition_stage1(graph, epsilon=0.2, target_cut=0.2 * N)
    )
    assert result.success
