"""E5 (Table 3) -- Theorem 3: deterministic partition quality.

Claim reproduced: "the algorithm runs in O(poly(1/eps) log n) rounds, the
diameter of each part is poly(1/eps), and if G is minor-free, then the
total number of edges between parts is at most eps*n".

The family x epsilon grid executes as a :class:`SweepSpec` on the
:mod:`repro.runtime` engine (``REPRO_BENCH_BACKEND=process``
parallelizes it); the ``target_cut="eps*n"`` knob lets each job resolve
its cut target against the *actual* generated size, which family
generators may round.
"""

from __future__ import annotations

import pytest

from _harness import bench_backend, bench_cache, quick_mode, save_table
from repro.graphs import make_planar
from repro.partition import partition_stage1
from repro.runtime import SweepSpec, run_sweep

FAMILIES = ("grid", "tri-grid", "apollonian", "delaunay", "outerplanar")
EPSILONS = (0.4, 0.2, 0.1)
N = 300 if quick_mode() else 600


@pytest.fixture(scope="module")
def partition_table():
    sweep = SweepSpec.make(
        "partition_stage1",
        families=FAMILIES,
        ns=(N,),
        seeds=(0,),
        epsilon=list(EPSILONS),
        target_cut="eps*n",
    )
    result = run_sweep(sweep, backend=bench_backend(), cache=bench_cache())

    rows = []
    for record in result.records:
        assert record["success"], record["family"]
        rows.append(
            (
                record["family"],
                record["epsilon"],
                record["cut"],
                record["target_cut"],
                record["max_diameter"],
            )
        )
    table = result.to_table(
        f"E5: Theorem 3 partition quality (n={N}, target = eps*n)",
        columns=[
            "family",
            "epsilon",
            "parts",
            "cut",
            "target_cut",
            "max_diameter",
            "max_height",
            "phases",
            "rounds",
        ],
    )
    save_table(table, "e05_partition.md")
    return rows


def test_cut_targets_met(partition_table):
    for family, epsilon, cut, target, _diam in partition_table:
        assert cut <= target, (family, epsilon, cut, target)


def test_diameters_do_not_depend_on_n(partition_table):
    # poly(1/eps) diameters: for fixed eps the diameter is bounded by a
    # modest constant, far below n
    for family, epsilon, _cut, _target, diam in partition_table:
        assert diam <= 4 ** (2 + int(3 / epsilon)), (family, epsilon, diam)


def test_benchmark_partition(benchmark, partition_table):
    graph = make_planar("delaunay", N, seed=0)
    result = benchmark(
        lambda: partition_stage1(graph, epsilon=0.2, target_cut=0.2 * N)
    )
    assert result.success
